//! WAM-style clause compilation with KCM's deferred choice points.
//!
//! KCM delays choice-point creation past the head and guard (§3.1.5), so a
//! clause compiles to:
//!
//! ```text
//!   <head gets — argument registers and X temporaries only>
//!   <guard — natively inlined comparisons, cut>
//!   neck                       ; multi-clause predicates only
//!   allocate N                 ; when an environment is needed
//!   <moves of permanent head variables X→Y>
//!   <body goals>
//!   deallocate / execute …     ; last-call optimisation
//! ```
//!
//! Two KCM-specific discipline points, both consequences of the deferred
//! choice point (the machine saves A1..An only at `neck`):
//!
//! * the head may not clobber argument registers — temporaries are
//!   allocated above every arity in the clause;
//! * the head may not touch the environment (it does not exist yet) —
//!   permanent variables are head-compiled into temporaries and moved to
//!   their Y slots right after `allocate`.

use crate::arith::Expr;
use crate::asm::AsmItem;
use crate::builtins::GoalKind;
use crate::ir::{Clause, Goal, PredId};
use crate::CompileError;
use kcm_arch::isa::{AluOp, Instr, Reg};
use kcm_arch::{SymbolTable, Word};
use kcm_prolog::Term;
use std::collections::HashMap;

/// Maximum predicate arity under the A1..A16 convention.
pub const MAX_ARITY: usize = 16;

#[derive(Debug, Default, Clone)]
struct VarInfo {
    perm: Option<u8>,
    /// X register currently holding the value (temporaries; also head
    /// residency in an A register).
    loc: Option<u8>,
    seen: bool,
    /// Whether the value is known to live on the global stack (safe for
    /// `unify_value` in write mode).
    globalized: bool,
    /// Whether the first occurrence was in the head.
    head_seen: bool,
    /// Total occurrences in the clause (1 = void).
    occurrences: usize,
}

/// Compiles one clause to symbolic code.
///
/// `multi` says whether the owning predicate has more than one clause (and
/// therefore needs the `neck` shallow-backtracking boundary).
///
/// # Errors
///
/// Returns resource-overflow errors ([`CompileError::OutOfRegisters`],
/// [`CompileError::ArityTooLarge`], [`CompileError::TooManyPermanents`]).
pub fn compile_clause(
    pred: &PredId,
    clause: &Clause,
    multi: bool,
    symbols: &mut SymbolTable,
    statics: &mut crate::link::StaticImage,
    options: &crate::CompileOptions,
) -> Result<Vec<AsmItem>, CompileError> {
    let mut c = Compiler::new(pred, clause, multi, symbols, statics, options)?;
    c.run()?;
    Ok(c.items)
}

struct Compiler<'a> {
    options: crate::CompileOptions,
    pred: PredId,
    head_args: Vec<Term>,
    kinds: Vec<GoalKind>,
    multi: bool,
    symbols: &'a mut SymbolTable,
    statics: &'a mut crate::link::StaticImage,
    items: Vec<AsmItem>,
    vars: HashMap<String, VarInfo>,
    perm_order: Vec<String>,
    next_temp: u8,
    temp_base: u8,
    free_temps: Vec<u8>,
    needs_env: bool,
    env_active: bool,
    first_call_done: bool,
}

impl<'a> Compiler<'a> {
    fn new(
        pred: &PredId,
        clause: &Clause,
        multi: bool,
        symbols: &'a mut SymbolTable,
        statics: &'a mut crate::link::StaticImage,
        options: &crate::CompileOptions,
    ) -> Result<Compiler<'a>, CompileError> {
        let head_args: Vec<Term> = clause.head_args().to_vec();
        if head_args.len() > MAX_ARITY {
            return Err(CompileError::ArityTooLarge {
                pred: pred.name.clone(),
                arity: head_args.len(),
            });
        }
        let kinds: Vec<GoalKind> = clause
            .goals
            .iter()
            .map(|g| match g {
                Goal::Cut => GoalKind::Cut,
                Goal::Term(t) => crate::builtins::classify_with(t, options),
            })
            .collect();
        for k in &kinds {
            if k.call_arity() > MAX_ARITY {
                return Err(CompileError::ArityTooLarge {
                    pred: pred.name.clone(),
                    arity: k.call_arity(),
                });
            }
        }

        // Environment analysis: an environment is needed unless the body's
        // only user call (if any) is the final goal (pure last-call shape).
        let call_positions: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_user_call())
            .map(|(i, _)| i)
            .collect();
        // Written as "some calls, and not the pure last-call shape" — the
        // de-Morganised form clippy suggests obscures the rule.
        #[allow(clippy::nonminimal_bool)]
        let needs_env = !call_positions.is_empty()
            && !(call_positions.len() == 1 && call_positions[0] == kinds.len() - 1);

        // Occurrence and permanence analysis. Chunk 0 is the head plus the
        // goals up to and including the first user call.
        let mut occurrences: HashMap<String, (usize, Vec<usize>)> = HashMap::new();
        let mut note = |name: &str, chunk: usize| {
            let e = occurrences.entry(name.to_owned()).or_default();
            e.0 += 1;
            if !e.1.contains(&chunk) {
                e.1.push(chunk);
            }
        };
        for a in &head_args {
            for v in all_var_occurrences(a) {
                note(v, 0);
            }
        }
        let mut chunk = 0usize;
        for k in &kinds {
            for v in goal_var_occurrences(k) {
                note(v, chunk);
            }
            if k.is_user_call() {
                chunk += 1;
            }
        }

        let mut vars: HashMap<String, VarInfo> = HashMap::new();
        let mut perm_order = Vec::new();
        // Permanent variables in order of first occurrence: walk head then
        // goals once more.
        let mut order: Vec<String> = Vec::new();
        for a in &head_args {
            for v in all_var_occurrences(a) {
                if !order.iter().any(|x| x == v) {
                    order.push(v.to_owned());
                }
            }
        }
        for k in &kinds {
            for v in goal_var_occurrences(k) {
                if !order.iter().any(|x| x == v) {
                    order.push(v.to_owned());
                }
            }
        }
        for name in &order {
            let (count, chunks) = &occurrences[name];
            let perm = if chunks.len() >= 2 {
                let y = perm_order.len();
                if y > 255 {
                    return Err(CompileError::TooManyPermanents {
                        pred: pred.name.clone(),
                    });
                }
                perm_order.push(name.clone());
                Some(y as u8)
            } else {
                None
            };
            vars.insert(
                name.clone(),
                VarInfo {
                    perm,
                    occurrences: *count,
                    ..VarInfo::default()
                },
            );
        }

        let temp_base = head_args
            .len()
            .max(kinds.iter().map(GoalKind::call_arity).max().unwrap_or(0))
            as u8;

        Ok(Compiler {
            options: options.clone(),
            pred: pred.clone(),
            head_args,
            kinds,
            multi,
            symbols,
            statics,
            items: Vec::new(),
            vars,
            perm_order,
            next_temp: temp_base,
            temp_base,
            free_temps: Vec::new(),
            needs_env,
            env_active: false,
            first_call_done: false,
        })
    }

    fn alloc_temp(&mut self) -> Result<Reg, CompileError> {
        if let Some(t) = self.free_temps.pop() {
            return Ok(Reg::new(t));
        }
        if self.next_temp as usize >= kcm_arch::isa::NUM_REGS {
            return Err(CompileError::OutOfRegisters {
                pred: self.pred.name.clone(),
            });
        }
        let r = Reg::new(self.next_temp);
        self.next_temp += 1;
        Ok(r)
    }

    /// Returns a temporary to the pool. Only called for registers that are
    /// provably dead (freshly allocated, consumed once, and never recorded
    /// as a variable's home).
    fn free_temp(&mut self, r: Reg) {
        let idx = r.index() as u8;
        if idx >= self.temp_base && !self.free_temps.contains(&idx) {
            self.free_temps.push(idx);
        }
    }

    fn emit(&mut self, i: Instr) {
        self.items.push(AsmItem::Plain(i));
    }

    /// The static-area word for a ground compound literal, when the
    /// target uses the static data area.
    fn static_literal(&mut self, t: &Term) -> Option<Word> {
        if self.options.static_ground_literals && matches!(t, Term::Struct(..)) && t.is_ground() {
            Some(self.statics.intern(t, self.symbols))
        } else {
            None
        }
    }

    fn const_word(&mut self, t: &Term) -> Option<Word> {
        match t {
            Term::Int(v) => Some(Word::int(*v)),
            Term::Float(v) => Some(Word::float(*v)),
            Term::Atom(n) if n == "[]" => Some(Word::nil()),
            Term::Atom(n) => Some(Word::atom(self.symbols.atom(n))),
            _ => None,
        }
    }

    fn run(&mut self) -> Result<(), CompileError> {
        // --- head ---
        let head_args = self.head_args.clone();
        for (j, arg) in head_args.iter().enumerate() {
            self.compile_get(arg, Reg::new(j as u8))?;
        }

        // --- guard: inline comparisons and cut before the neck ---
        let kinds = self.kinds.clone();
        let mut i = 0;
        while i < kinds.len() && kinds[i].is_guard_safe() {
            self.compile_inline_goal(&kinds[i], i)?;
            i += 1;
        }

        // --- neck: the shallow/deep boundary (§3.1.5) ---
        if self.multi && self.options.deferred_choice_points {
            self.emit(Instr::Neck);
        }

        // --- environment ---
        if self.needs_env {
            self.emit(Instr::Allocate {
                n: self.perm_order.len() as u8,
            });
            self.env_active = true;
            // Move head-resident permanent variables to their Y slots.
            for (y, name) in self.perm_order.clone().into_iter().enumerate() {
                let info = self.vars.get_mut(&name).expect("perm var recorded");
                if info.seen {
                    let loc = info.loc.take().expect("head var has a register");
                    self.emit(Instr::GetVariableY {
                        y: y as u8,
                        a: Reg::new(loc),
                    });
                }
            }
        }

        // --- body ---
        let mut reached_end = true;
        while i < kinds.len() {
            let k = &kinds[i];
            let last = i == kinds.len() - 1;
            match k {
                GoalKind::True
                | GoalKind::Cut
                | GoalKind::Compare(..)
                | GoalKind::Is(..)
                | GoalKind::Unify(..) => {
                    self.compile_inline_goal(k, i)?;
                }
                GoalKind::Fail => {
                    self.emit(Instr::Fail);
                    reached_end = false;
                    break;
                }
                GoalKind::Escape(b, args) => {
                    self.put_args(&args.clone(), i, false)?;
                    self.emit(Instr::Escape { builtin: *b });
                }
                GoalKind::UserCall(pid, args) => {
                    let pid = pid.clone();
                    self.put_args(&args.clone(), i, last && self.needs_env)?;
                    if last {
                        if self.needs_env {
                            self.emit(Instr::Deallocate);
                        }
                        self.items.push(AsmItem::ExecutePred(pid));
                        reached_end = false;
                    } else {
                        self.items.push(AsmItem::CallPred(pid));
                        self.first_call_done = true;
                        // Calls destroy every X register.
                        for info in self.vars.values_mut() {
                            info.loc = None;
                        }
                        self.next_temp = self.temp_base;
                        self.free_temps.clear();
                    }
                }
            }
            i += 1;
        }

        if reached_end {
            if self.needs_env {
                self.emit(Instr::Deallocate);
            }
            self.emit(Instr::Proceed);
        }
        Ok(())
    }

    fn compile_inline_goal(&mut self, k: &GoalKind, goal_idx: usize) -> Result<(), CompileError> {
        match k {
            GoalKind::True => Ok(()),
            GoalKind::Cut => {
                if self.first_call_done {
                    self.emit(Instr::CutEnv);
                } else {
                    self.emit(Instr::Cut);
                }
                Ok(())
            }
            GoalKind::Compare(cond, l, r) => {
                self.emit(Instr::Mark);
                let rl = self.eval_expr(l)?;
                self.check_left_operand_order(l, r, rl);
                let rr = self.eval_expr(r)?;
                self.emit(Instr::CmpRegs { s1: rl, s2: rr });
                self.items.push(AsmItem::BranchFail(cond.negated()));
                self.free_temp(rl);
                self.free_temp(rr);
                Ok(())
            }
            GoalKind::Is(lhs, e) => {
                self.emit(Instr::Mark);
                let t = self.eval_expr(e)?;
                // A bare-variable expression never reaches the ALU, so
                // nothing would check it holds a number — `X is Y` must
                // still fault on unbound or non-numeric `Y` exactly like
                // the escape evaluator. `max(t, t)` is a checking identity.
                if matches!(e, Expr::Var(_)) {
                    self.emit(Instr::Alu {
                        op: AluOp::Max,
                        d: t,
                        s1: t,
                        s2: t,
                    });
                }
                self.compile_get(lhs, t)
            }
            GoalKind::Unify(a, b) => {
                self.emit(Instr::Mark);
                let (a, b) = (a.clone(), b.clone());
                // Compile the side that is cheaper to materialise first;
                // prefer materialising an already-seen variable.
                let t = self.put_term_to_reg(&a, goal_idx)?;
                self.compile_get(&b, t)
            }
            _ => unreachable!("not an inline goal"),
        }
    }

    // ------------------------------------------------------------- get side

    /// Unifies `term` against the value in register `a` (head argument
    /// compilation; also used for `=/2` and `is/2` result binding).
    fn compile_get(&mut self, term: &Term, a: Reg) -> Result<(), CompileError> {
        match term {
            Term::Var(v) => {
                let info = self.vars.get(v).cloned().unwrap_or_default();
                if !info.seen {
                    self.mark_seen(v, !self.first_call_done && !self.env_active);
                    if let (Some(y), true) = (info.perm, self.env_active) {
                        self.emit(Instr::GetVariableY { y, a });
                    } else {
                        // Value stays where it is; remember the register.
                        self.set_loc(v, a.index() as u8);
                    }
                } else if let Some(loc) = info.loc {
                    if loc != a.index() as u8 {
                        self.emit(Instr::GetValue {
                            x: Reg::new(loc),
                            a,
                        });
                    }
                } else if let Some(y) = info.perm {
                    self.emit(Instr::GetValueY { y, a });
                } else {
                    // A temporary without a register can only arise after a
                    // call destroyed it — which permanence analysis rules
                    // out for temporaries.
                    unreachable!("temporary {v} lost its register");
                }
                Ok(())
            }
            Term::Struct(n, args) if n == "." && args.len() == 2 => {
                if let Some(c) = self.static_literal(term) {
                    self.emit(Instr::GetConstant { c, a });
                    return Ok(());
                }
                self.emit(Instr::GetList { a });
                self.compile_get_spine(&args[0].clone(), &args[1].clone())
            }
            Term::Struct(n, args) => {
                if let Some(c) = self.static_literal(term) {
                    self.emit(Instr::GetConstant { c, a });
                    return Ok(());
                }
                let f = self.symbols.functor(n, args.len() as u8);
                self.emit(Instr::GetStructure { f, a });
                self.compile_unify_args_get(&args.clone())
            }
            t => {
                if t.is_nil() {
                    self.emit(Instr::GetNil { a });
                } else {
                    let c = self.const_word(t).expect("constant term");
                    self.emit(Instr::GetConstant { c, a });
                }
                Ok(())
            }
        }
    }

    /// Emits the unify sequence for a list spine in get mode: items are
    /// unified cell by cell, with `unify_tail_list` chaining statically
    /// known tails (two instructions per static cell, §4.1).
    fn compile_get_spine(&mut self, head: &Term, tail: &Term) -> Result<(), CompileError> {
        let mut queue: Vec<(Reg, Term)> = Vec::new();
        let mut head = head.clone();
        let mut tail = tail.clone();
        loop {
            self.emit_read_item(&head, &mut queue)?;
            match tail {
                Term::Struct(ref n, ref args) if n == "." && args.len() == 2 => {
                    self.emit(Instr::UnifyTailList);
                    let (h, t) = (args[0].clone(), args[1].clone());
                    head = h;
                    tail = t;
                }
                other => {
                    self.emit_read_item(&other, &mut queue)?;
                    break;
                }
            }
        }
        for (r, t) in queue {
            self.compile_get(&t, r)?;
            self.free_temp(r);
        }
        Ok(())
    }

    /// Emits the read/write-mode unify instruction for one structure or
    /// list-cell argument, queueing nested compounds.
    fn emit_read_item(
        &mut self,
        sub: &Term,
        queue: &mut Vec<(Reg, Term)>,
    ) -> Result<(), CompileError> {
        match sub {
            Term::Var(v) => {
                let info = self.vars.get(v).cloned().unwrap_or_default();
                if info.occurrences == 1 {
                    self.emit(Instr::UnifyVoid { n: 1 });
                    return Ok(());
                }
                if !info.seen {
                    self.mark_seen(v, false);
                    if let (Some(y), true) = (info.perm, self.env_active) {
                        self.emit(Instr::UnifyVariableY { y });
                        self.set_globalized(v);
                    } else {
                        let t = self.alloc_temp()?;
                        self.emit(Instr::UnifyVariable { x: t });
                        self.set_loc(v, t.index() as u8);
                        self.set_globalized(v);
                    }
                } else if let Some(loc) = info.loc {
                    if info.globalized {
                        self.emit(Instr::UnifyValue { x: Reg::new(loc) });
                    } else {
                        self.emit(Instr::UnifyLocalValue { x: Reg::new(loc) });
                    }
                } else if let Some(y) = info.perm {
                    if info.globalized {
                        self.emit(Instr::UnifyValueY { y });
                    } else {
                        self.emit(Instr::UnifyLocalValueY { y });
                    }
                } else {
                    unreachable!("temporary {v} lost its register");
                }
                Ok(())
            }
            Term::Struct(..) => {
                if let Some(c) = self.static_literal(sub) {
                    self.emit(Instr::UnifyConstant { c });
                    return Ok(());
                }
                let t = self.alloc_temp()?;
                self.emit(Instr::UnifyVariable { x: t });
                queue.push((t, sub.clone()));
                Ok(())
            }
            t => {
                if t.is_nil() {
                    self.emit(Instr::UnifyNil);
                } else {
                    let c = self.const_word(t).expect("constant term");
                    self.emit(Instr::UnifyConstant { c });
                }
                Ok(())
            }
        }
    }

    /// Emits the unify sequence for the arguments of a get-mode structure,
    /// queueing nested compounds (breadth-first, the standard WAM scheme).
    fn compile_unify_args_get(&mut self, args: &[Term]) -> Result<(), CompileError> {
        let mut queue: Vec<(Reg, Term)> = Vec::new();
        let mut voids = 0u8;
        let flush_voids = |me: &mut Self, voids: &mut u8| {
            if *voids > 0 {
                me.emit(Instr::UnifyVoid { n: *voids });
                *voids = 0;
            }
        };
        for sub in args {
            match sub {
                Term::Var(v) => {
                    let info = self.vars.get(v).cloned().unwrap_or_default();
                    if info.occurrences == 1 {
                        voids += 1;
                        continue;
                    }
                    flush_voids(self, &mut voids);
                    if !info.seen {
                        self.mark_seen(v, false);
                        if let (Some(y), true) = (info.perm, self.env_active) {
                            self.emit(Instr::UnifyVariableY { y });
                            self.set_globalized(v);
                        } else {
                            let t = self.alloc_temp()?;
                            self.emit(Instr::UnifyVariable { x: t });
                            self.set_loc(v, t.index() as u8);
                            self.set_globalized(v);
                        }
                    } else if let Some(loc) = info.loc {
                        if info.globalized {
                            self.emit(Instr::UnifyValue { x: Reg::new(loc) });
                        } else {
                            self.emit(Instr::UnifyLocalValue { x: Reg::new(loc) });
                        }
                    } else if let Some(y) = info.perm {
                        if info.globalized {
                            self.emit(Instr::UnifyValueY { y });
                        } else {
                            self.emit(Instr::UnifyLocalValueY { y });
                        }
                    } else {
                        unreachable!("temporary {v} lost its register");
                    }
                }
                Term::Struct(..) => {
                    flush_voids(self, &mut voids);
                    if let Some(c) = self.static_literal(sub) {
                        self.emit(Instr::UnifyConstant { c });
                        continue;
                    }
                    let t = self.alloc_temp()?;
                    self.emit(Instr::UnifyVariable { x: t });
                    queue.push((t, sub.clone()));
                }
                t => {
                    flush_voids(self, &mut voids);
                    if t.is_nil() {
                        self.emit(Instr::UnifyNil);
                    } else {
                        let c = self.const_word(t).expect("constant term");
                        self.emit(Instr::UnifyConstant { c });
                    }
                }
            }
        }
        flush_voids(self, &mut voids);
        for (r, t) in queue {
            self.compile_get(&t, r)?;
            self.free_temp(r);
        }
        Ok(())
    }

    // ------------------------------------------------------------- put side

    /// Materialises `term` in some register, for `=/2` left sides.
    fn put_term_to_reg(&mut self, term: &Term, goal_idx: usize) -> Result<Reg, CompileError> {
        match term {
            Term::Var(v) => {
                let info = self.vars.get(v).cloned().unwrap_or_default();
                if info.seen {
                    if let Some(loc) = info.loc {
                        return Ok(Reg::new(loc));
                    }
                    let y = info.perm.expect("seen var without loc is permanent");
                    let t = self.alloc_temp()?;
                    self.emit(Instr::PutValueY { y, a: t });
                    self.set_loc(v, t.index() as u8);
                    return Ok(t);
                }
                self.mark_seen(v, false);
                if let (Some(y), true) = (info.perm, self.env_active) {
                    let t = self.alloc_temp()?;
                    self.emit(Instr::PutVariableY { y, a: t });
                    self.set_loc(v, t.index() as u8);
                    Ok(t)
                } else {
                    let t = self.alloc_temp()?;
                    self.emit(Instr::PutVariable { x: t, a: t });
                    self.set_loc(v, t.index() as u8);
                    self.set_globalized(v);
                    Ok(t)
                }
            }
            Term::Struct(..) => {
                if let Some(c) = self.static_literal(term) {
                    let r = self.alloc_temp()?;
                    self.emit(Instr::PutConstant { c, a: r });
                    return Ok(r);
                }
                let t = self.alloc_temp()?;
                self.put_compound(term, t, goal_idx)?;
                Ok(t)
            }
            t => {
                let c = self.const_word(t).expect("constant term");
                let r = self.alloc_temp()?;
                self.emit(Instr::PutConstant { c, a: r });
                Ok(r)
            }
        }
    }

    /// Emits the argument puts for a call-like goal of arity
    /// `args.len()`, relocating conflicting argument registers first.
    /// `unsafe_ctx` is set for the final call before `deallocate`.
    fn put_args(
        &mut self,
        args: &[Term],
        goal_idx: usize,
        unsafe_ctx: bool,
    ) -> Result<(), CompileError> {
        let k = args.len();
        // Relocate variables resident in A1..Ak that are still needed in a
        // different role.
        let resident: Vec<(String, u8)> = self
            .vars
            .iter()
            .filter_map(|(name, info)| {
                info.loc
                    .filter(|&l| (l as usize) < k)
                    .map(|l| (name.clone(), l))
            })
            .collect();
        for (name, loc) in resident {
            let in_place = matches!(args.get(loc as usize), Some(Term::Var(v)) if *v == name);
            let other_use_here = args
                .iter()
                .enumerate()
                .any(|(j, t)| j != loc as usize && term_uses_var(t, &name));
            let nested_use_here = matches!(args.get(loc as usize), Some(t)
                if !matches!(t, Term::Var(_)) && term_uses_var(t, &name));
            let used_later = self.used_in_goals_after(&name, goal_idx);
            // Two distinct relocation rules (displaced vs in-place), kept
            // separate for readability.
            #[allow(clippy::nonminimal_bool)]
            let must_relocate = (!in_place
                && (other_use_here
                    || nested_use_here
                    || used_later
                    || term_uses_var_anywhere(args, &name)))
                || (in_place && (other_use_here || used_later));
            if must_relocate {
                let t = self.alloc_temp()?;
                self.emit(Instr::GetVariable {
                    x: t,
                    a: Reg::new(loc),
                });
                self.set_loc(&name, t.index() as u8);
            } else if !in_place {
                // Resident but unused from here on: drop the stale mapping
                // before the put overwrites the register.
                if let Some(info) = self.vars.get_mut(&name) {
                    info.loc = None;
                }
            }
        }
        for (j, arg) in args.iter().enumerate() {
            self.compile_put(arg, Reg::new(j as u8), goal_idx, unsafe_ctx)?;
        }
        Ok(())
    }

    fn compile_put(
        &mut self,
        term: &Term,
        a: Reg,
        goal_idx: usize,
        unsafe_ctx: bool,
    ) -> Result<(), CompileError> {
        match term {
            Term::Var(v) => {
                let info = self.vars.get(v).cloned().unwrap_or_default();
                if !info.seen {
                    self.mark_seen(v, false);
                    if let (Some(y), true) = (info.perm, self.env_active) {
                        self.emit(Instr::PutVariableY { y, a });
                    } else {
                        let t = self.alloc_temp()?;
                        self.emit(Instr::PutVariable { x: t, a });
                        self.set_loc(v, t.index() as u8);
                        self.set_globalized(v);
                    }
                } else if let Some(loc) = info.loc {
                    if loc != a.index() as u8 {
                        self.emit(Instr::PutValue {
                            x: Reg::new(loc),
                            a,
                        });
                    }
                } else if let Some(y) = info.perm {
                    if unsafe_ctx && !info.globalized && !info.head_seen {
                        self.emit(Instr::PutUnsafeValue { y, a });
                        self.set_globalized(v);
                    } else {
                        self.emit(Instr::PutValueY { y, a });
                    }
                } else {
                    unreachable!("temporary {v} lost its register");
                }
                Ok(())
            }
            Term::Struct(..) => {
                if let Some(c) = self.static_literal(term) {
                    self.emit(Instr::PutConstant { c, a });
                    return Ok(());
                }
                self.put_compound(term, a, goal_idx)
            }
            t => {
                if t.is_nil() {
                    self.emit(Instr::PutNil { a });
                } else {
                    let c = self.const_word(t).expect("constant term");
                    self.emit(Instr::PutConstant { c, a });
                }
                Ok(())
            }
        }
    }

    /// Builds a compound term bottom-up in write mode into `dst`. List
    /// spines are built iteratively (innermost cell first) so that a long
    /// list literal needs a constant number of temporaries.
    fn put_compound(&mut self, term: &Term, dst: Reg, goal_idx: usize) -> Result<(), CompileError> {
        if let Some(c) = self.static_literal(term) {
            self.emit(Instr::PutConstant { c, a: dst });
            return Ok(());
        }
        if term.is_cons() {
            return self.put_list_spine(term, dst, goal_idx);
        }
        let (name, args) = match term {
            Term::Struct(n, a) => (n.clone(), a.clone()),
            _ => unreachable!("put_compound on non-compound"),
        };
        // Children first (into temporaries).
        let mut child_locs: Vec<Option<Reg>> = vec![None; args.len()];
        for (idx, sub) in args.iter().enumerate() {
            if matches!(sub, Term::Struct(..)) {
                let t = self.alloc_temp()?;
                self.put_compound(sub, t, goal_idx)?;
                child_locs[idx] = Some(t);
            }
        }
        let f = self.symbols.functor(&name, args.len() as u8);
        self.emit(Instr::PutStructure { f, a: dst });
        for (idx, sub) in args.iter().enumerate() {
            self.emit_write_arg(sub, child_locs[idx])?;
        }
        Ok(())
    }

    /// Builds a (possibly partial) list literal in write mode. The spine
    /// streams forward with `unify_tail_list` (cells laid out
    /// contiguously, two instructions per cell): compound elements are
    /// prebuilt into temporaries before the spine opens so the cell
    /// stream stays contiguous.
    fn put_list_spine(
        &mut self,
        term: &Term,
        dst: Reg,
        goal_idx: usize,
    ) -> Result<(), CompileError> {
        let mut items: Vec<&Term> = Vec::new();
        let mut tail = term;
        while let Term::Struct(n, args) = tail {
            if n != "." || args.len() != 2 {
                break;
            }
            items.push(&args[0]);
            tail = &args[1];
        }
        let tail = tail.clone();
        let items: Vec<Term> = items.into_iter().cloned().collect();
        // Prebuild compounds (elements and a compound tail). If that
        // would exhaust the register file, fall back to the bottom-up
        // two-temporary scheme.
        let compound_count = items
            .iter()
            .chain(std::iter::once(&tail))
            .filter(|t| matches!(t, Term::Struct(..)))
            .count();
        if compound_count + 2 + (self.next_temp as usize) >= kcm_arch::isa::NUM_REGS {
            return self.put_list_spine_bottom_up(&items, &tail, dst, goal_idx);
        }
        let mut prebuilt: Vec<Option<Reg>> = Vec::with_capacity(items.len());
        for item in &items {
            if matches!(item, Term::Struct(..)) {
                let t = self.alloc_temp()?;
                self.put_compound(item, t, goal_idx)?;
                prebuilt.push(Some(t));
            } else {
                prebuilt.push(None);
            }
        }
        let tail_reg = if matches!(tail, Term::Struct(..)) {
            let t = self.alloc_temp()?;
            self.put_compound(&tail, t, goal_idx)?;
            Some(t)
        } else {
            None
        };
        self.emit(Instr::PutList { a: dst });
        let last = items.len() - 1;
        for (idx, item) in items.iter().enumerate() {
            self.emit_write_arg(item, prebuilt[idx])?;
            if idx < last {
                self.emit(Instr::UnifyTailList);
            }
        }
        self.emit_write_arg(&tail, tail_reg)?;
        Ok(())
    }

    /// Fallback spine builder: innermost cell first, threading the
    /// previous cell through one register (constant register pressure,
    /// three instructions per cell).
    fn put_list_spine_bottom_up(
        &mut self,
        items: &[Term],
        tail: &Term,
        dst: Reg,
        goal_idx: usize,
    ) -> Result<(), CompileError> {
        let mut prev: Option<Reg> = None;
        for (idx, item) in items.iter().enumerate().rev() {
            let target = if idx == 0 { dst } else { self.alloc_temp()? };
            // Prebuild a compound element before opening the cell.
            let prebuilt = if matches!(item, Term::Struct(..)) {
                let t = self.alloc_temp()?;
                self.put_compound(item, t, goal_idx)?;
                Some(t)
            } else {
                None
            };
            self.emit(Instr::PutList { a: target });
            self.emit_write_arg(item, prebuilt)?;
            match prev {
                None => self.emit_write_arg(tail, None)?,
                Some(r) => {
                    self.emit(Instr::UnifyValue { x: r });
                    self.free_temp(r);
                }
            }
            prev = Some(target);
        }
        Ok(())
    }

    /// Emits the write-mode unify instruction for one argument of a cell
    /// or structure being built. `prebuilt` carries the register of an
    /// already-constructed compound argument (freed here).
    fn emit_write_arg(&mut self, sub: &Term, prebuilt: Option<Reg>) -> Result<(), CompileError> {
        match sub {
            Term::Struct(..) => {
                if prebuilt.is_none() {
                    if let Some(c) = self.static_literal(sub) {
                        self.emit(Instr::UnifyConstant { c });
                        return Ok(());
                    }
                }
                let r = match prebuilt {
                    Some(r) => r,
                    None => {
                        let t = self.alloc_temp()?;
                        self.put_compound(sub, t, usize::MAX)?;
                        t
                    }
                };
                self.emit(Instr::UnifyValue { x: r });
                self.free_temp(r);
            }
            Term::Var(v) => {
                let info = self.vars.get(v).cloned().unwrap_or_default();
                if !info.seen {
                    self.mark_seen(v, false);
                    if let (Some(y), true) = (info.perm, self.env_active) {
                        self.emit(Instr::UnifyVariableY { y });
                        self.set_globalized(v);
                    } else {
                        let t = self.alloc_temp()?;
                        self.emit(Instr::UnifyVariable { x: t });
                        self.set_loc(v, t.index() as u8);
                        self.set_globalized(v);
                    }
                } else if let Some(loc) = info.loc {
                    if info.globalized {
                        self.emit(Instr::UnifyValue { x: Reg::new(loc) });
                    } else {
                        self.emit(Instr::UnifyLocalValue { x: Reg::new(loc) });
                    }
                } else if let Some(y) = info.perm {
                    if info.globalized {
                        self.emit(Instr::UnifyValueY { y });
                    } else {
                        self.emit(Instr::UnifyLocalValueY { y });
                    }
                } else {
                    unreachable!("temporary {v} lost its register");
                }
            }
            t => {
                if t.is_nil() {
                    self.emit(Instr::UnifyNil);
                } else {
                    let c = self.const_word(t).expect("constant term");
                    self.emit(Instr::UnifyConstant { c });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------- arith

    /// The escape evaluator faults strictly left-to-right, but a bare
    /// variable on the left loads with no numeric check while a compound
    /// right operand emits ALU instructions of its own — those would
    /// fault first, inverting the observable error. When both conditions
    /// hold, check the left operand now with the `max(t, t)` identity.
    fn check_left_operand_order(&mut self, l: &Expr, r: &Expr, rl: Reg) {
        let left_unchecked = matches!(l, Expr::Var(_));
        let right_can_fault = matches!(r, Expr::Bin(..) | Expr::Neg(..));
        if left_unchecked && right_can_fault {
            self.emit(Instr::Alu {
                op: AluOp::Max,
                d: rl,
                s1: rl,
                s2: rl,
            });
        }
    }

    fn eval_expr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        match e {
            Expr::Int(v) => {
                let t = self.alloc_temp()?;
                self.emit(Instr::LoadConst {
                    d: t,
                    c: Word::int(*v),
                });
                Ok(t)
            }
            Expr::Float(v) => {
                let t = self.alloc_temp()?;
                self.emit(Instr::LoadConst {
                    d: t,
                    c: Word::float(*v),
                });
                Ok(t)
            }
            Expr::Var(v) => {
                let src = self.put_term_to_reg(&Term::Var(v.clone()), usize::MAX)?;
                let t = self.alloc_temp()?;
                self.emit(Instr::Deref { d: t, s: src });
                Ok(t)
            }
            Expr::Bin(op, a, b) => {
                let ra = self.eval_expr(a)?;
                self.check_left_operand_order(a, b, ra);
                let rb = self.eval_expr(b)?;
                let t = self.alloc_temp()?;
                self.emit(Instr::Alu {
                    op: *op,
                    d: t,
                    s1: ra,
                    s2: rb,
                });
                self.free_temp(ra);
                self.free_temp(rb);
                Ok(t)
            }
            Expr::Neg(a) => {
                let ra = self.eval_expr(a)?;
                let t = self.alloc_temp()?;
                self.emit(Instr::Alu {
                    op: AluOp::Neg,
                    d: t,
                    s1: ra,
                    s2: ra,
                });
                self.free_temp(ra);
                Ok(t)
            }
        }
    }

    // ------------------------------------------------------------- helpers

    fn mark_seen(&mut self, v: &str, head: bool) {
        let info = self.vars.entry(v.to_owned()).or_default();
        info.seen = true;
        if head {
            info.head_seen = true;
        }
    }

    fn set_loc(&mut self, v: &str, loc: u8) {
        self.vars.entry(v.to_owned()).or_default().loc = Some(loc);
    }

    fn set_globalized(&mut self, v: &str) {
        self.vars.entry(v.to_owned()).or_default().globalized = true;
    }

    fn used_in_goals_after(&self, v: &str, goal_idx: usize) -> bool {
        self.kinds
            .iter()
            .skip(goal_idx + 1)
            .any(|k| goal_var_occurrences(k).contains(&v))
    }
}

fn term_uses_var(t: &Term, v: &str) -> bool {
    match t {
        Term::Var(x) => x == v,
        Term::Struct(_, args) => args.iter().any(|a| term_uses_var(a, v)),
        _ => false,
    }
}

fn term_uses_var_anywhere(args: &[Term], v: &str) -> bool {
    args.iter().any(|t| term_uses_var(t, v))
}

fn all_var_occurrences(t: &Term) -> Vec<&str> {
    let mut out = Vec::new();
    fn walk<'a>(t: &'a Term, out: &mut Vec<&'a str>) {
        match t {
            Term::Var(v) => out.push(v),
            Term::Struct(_, args) => {
                for a in args {
                    walk(a, out);
                }
            }
            _ => {}
        }
    }
    walk(t, &mut out);
    out
}

fn goal_var_occurrences(k: &GoalKind) -> Vec<&str> {
    match k {
        GoalKind::UserCall(_, args) | GoalKind::Escape(_, args) => {
            let mut out = Vec::new();
            for a in args {
                out.extend(all_var_occurrences(a));
            }
            out
        }
        GoalKind::Unify(a, b) => {
            let mut out = all_var_occurrences(a);
            out.extend(all_var_occurrences(b));
            out
        }
        GoalKind::Is(lhs, e) => {
            let mut out = all_var_occurrences(lhs);
            out.extend(e.variables());
            out
        }
        GoalKind::Compare(_, l, r) => {
            let mut out = l.variables();
            out.extend(r.variables());
            out
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcm_prolog::read_program;

    fn compile_first(src: &str, multi: bool) -> Vec<AsmItem> {
        let clauses = read_program(src).unwrap();
        let prog = crate::ir::Program::from_clauses(&clauses).unwrap();
        let pred = &prog.predicates[0];
        let mut symbols = SymbolTable::new();
        let mut statics = crate::link::StaticImage::new(crate::link::STATIC_DATA_BASE);
        compile_clause(
            &pred.id,
            &pred.clauses[0],
            multi,
            &mut symbols,
            &mut statics,
            &Default::default(),
        )
        .unwrap()
    }

    fn instrs(items: &[AsmItem]) -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                AsmItem::Plain(x) => x.to_string(),
                other => format!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn fact_compiles_to_gets_and_proceed() {
        let items = compile_first("p(a, X, X).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("get_constant"), "{text}");
        assert!(text.ends_with("proceed"), "{text}");
        // X-X: one get stays implicit, the second is a get_value.
        assert!(text.contains("get_value"), "{text}");
    }

    #[test]
    fn multi_clause_gets_a_neck() {
        let items = compile_first("p(a).", true);
        assert!(instrs(&items).contains(&"neck".to_owned()));
        let items = compile_first("p(a).", false);
        assert!(!instrs(&items).contains(&"neck".to_owned()));
    }

    #[test]
    fn last_call_optimisation_without_env() {
        let items = compile_first("p(X) :- q(X).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("ExecutePred"), "{text}");
        assert!(!text.contains("allocate"), "{text}");
        assert!(!text.contains("Deallocate"), "{text}");
    }

    #[test]
    fn two_calls_need_an_environment() {
        let items = compile_first("p(X) :- q(X), r(X).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("allocate 1"), "{text}");
        assert!(text.contains("CallPred"), "{text}");
        assert!(text.contains("deallocate"), "{text}");
        assert!(text.contains("ExecutePred"), "{text}");
        // X is permanent: moved to Y after allocate, read back for r.
        assert!(text.contains("get_variable y0"), "{text}");
    }

    #[test]
    fn nrev_clause_shape() {
        let items = compile_first("nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).", true);
        let text = instrs(&items).join("; ");
        assert!(text.contains("get_list r0"), "{text}");
        assert!(text.contains("neck"), "{text}");
        assert!(text.contains("allocate"), "{text}");
        // [H] built in write mode for the second call.
        assert!(text.contains("put_list"), "{text}");
    }

    #[test]
    fn append_recursive_clause_is_env_free() {
        let items = compile_first("append([H|T], L, [H|R]) :- append(T, L, R).", true);
        let text = instrs(&items).join("; ");
        assert!(!text.contains("allocate"), "{text}");
        assert!(text.contains("ExecutePred"), "{text}");
        // H unifies across A1 and A3 lists.
        assert!(text.contains("unify_variable"), "{text}");
        assert!(
            text.contains("unify_value") || text.contains("unify_local_value"),
            "{text}"
        );
    }

    #[test]
    fn inline_arithmetic_emits_alu() {
        let items = compile_first("p(X, Y) :- Y is X + 1.", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("alu.Add"), "{text}");
        assert!(text.contains("deref"), "{text}");
        assert!(!text.contains("escape"), "{text}");
    }

    #[test]
    fn guard_comparison_sits_before_neck() {
        let items = compile_first("max(X, Y, Y) :- X < Y.", true);
        let text = instrs(&items);
        let neck = text.iter().position(|s| s == "neck").unwrap();
        let cmp = text.iter().position(|s| s.starts_with("cmp")).unwrap();
        assert!(cmp < neck, "{text:?}");
    }

    #[test]
    fn non_guard_goal_sits_after_neck() {
        let items = compile_first("p(X, Y) :- Y is X + 1, q(Y).", true);
        let text = instrs(&items);
        let neck = text.iter().position(|s| s == "neck").unwrap();
        let alu = text.iter().position(|s| s.starts_with("alu")).unwrap();
        assert!(neck < alu, "{text:?}");
    }

    #[test]
    fn cut_before_call_uses_register_form() {
        let items = compile_first("p(X) :- !, q(X).", true);
        let text = instrs(&items);
        assert!(text.contains(&"cut".to_owned()), "{text:?}");
        assert!(!text.contains(&"cut_env".to_owned()), "{text:?}");
    }

    #[test]
    fn cut_after_call_uses_env_form() {
        let items = compile_first("p(X) :- q(X), !, r(X).", true);
        let text = instrs(&items);
        assert!(text.contains(&"cut_env".to_owned()), "{text:?}");
    }

    #[test]
    fn void_head_variables_cost_nothing() {
        let items = compile_first("p(_, _, X) :- q(X).", false);
        let text = instrs(&items).join("; ");
        // No get for the two voids: only the execute and nothing for A1/A2.
        assert!(!text.contains("get_variable r"), "{text}");
    }

    #[test]
    fn void_in_structure_uses_unify_void() {
        let items = compile_first("p(f(_, _, X)) :- q(X).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("unify_void 2"), "{text}");
    }

    #[test]
    fn unsafe_value_for_body_only_permanent() {
        // Y first occurs in the body and is passed to the *last* call:
        // must be globalised by put_unsafe_value.
        let items = compile_first("p(X) :- q(X, Y), r(Y).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("put_unsafe_value"), "{text}");
    }

    #[test]
    fn head_permanent_is_safe() {
        let items = compile_first("p(X) :- q(X), r(X).", false);
        let text = instrs(&items).join("; ");
        assert!(!text.contains("put_unsafe_value"), "{text}");
    }

    #[test]
    fn argument_register_conflict_is_relocated() {
        // In q(Y, X) the head values X(=A1), Y(=A2) must swap: naive puts
        // would overwrite one before reading it.
        let items = compile_first("p(X, Y) :- q(Y, X).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("get_variable"), "{text}");
    }

    #[test]
    fn deep_structure_put_is_bottom_up() {
        let items = compile_first("p(X) :- q(f(g(X))).", false);
        let text = instrs(&items);
        let g = text
            .iter()
            .position(|s| s.contains("put_structure") && s.contains("fn#0"))
            .unwrap();
        let f = text
            .iter()
            .position(|s| s.contains("put_structure") && s.contains("fn#1"))
            .unwrap();
        assert!(g < f, "inner g built before outer f: {text:?}");
    }

    #[test]
    fn ground_literals_go_to_static_data() {
        // A fully ground list compiles to one get_constant against a
        // static-area pointer.
        let items = compile_first("p([1, a]).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("get_constant lst@"), "{text}");
        assert!(!text.contains("get_list"), "{text}");
    }

    #[test]
    fn constants_inline_in_structures() {
        // A non-ground list keeps the in-code unify sequence.
        let items = compile_first("p([1, a | T]) :- q(T).", false);
        let text = instrs(&items).join("; ");
        assert!(text.contains("get_list"), "{text}");
        assert!(text.contains("unify_constant 1"), "{text}");
        assert!(text.contains("unify_tail_list"), "{text}");
    }

    #[test]
    fn arity_limit_enforced() {
        let args: Vec<String> = (0..17).map(|i| format!("X{i}")).collect();
        let src = format!("p({}).", args.join(", "));
        let clauses = read_program(&src).unwrap();
        let prog = crate::ir::Program::from_clauses(&clauses).unwrap();
        let mut symbols = SymbolTable::new();
        let mut statics = crate::link::StaticImage::new(crate::link::STATIC_DATA_BASE);
        let r = compile_clause(
            &prog.predicates[0].id,
            &prog.predicates[0].clauses[0],
            false,
            &mut symbols,
            &mut statics,
            &Default::default(),
        );
        assert!(matches!(r, Err(CompileError::ArityTooLarge { .. })));
    }
}
