//! The macro assembler.
//!
//! The clause compiler and the indexer emit *symbolic* code: instructions
//! whose branch targets are local labels or predicate names. The assembler
//! resolves these to the absolute addresses the hardware requires ("all
//! branches in KCM have absolute addresses as branch targets", §3.1.3).

use crate::ir::PredId;
use kcm_arch::isa::{Cond, Instr};
use kcm_arch::{CodeAddr, FunctorId, Reg, Word};
use std::collections::HashMap;

/// One item of symbolic code.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmItem {
    /// A label definition (occupies no code words).
    Label(usize),
    /// An instruction with no code-address operand.
    Plain(Instr),
    /// `call` to a predicate, resolved by the linker.
    CallPred(PredId),
    /// `execute` (last-call) to a predicate.
    ExecutePred(PredId),
    /// `try_me_else` with a label alternative.
    TryMeElse(usize),
    /// `retry_me_else` with a label alternative.
    RetryMeElse(usize),
    /// Indexed `try` of a clause label.
    TryL(usize),
    /// Indexed `retry` of a clause label.
    RetryL(usize),
    /// Indexed `trust` of a clause label.
    TrustL(usize),
    /// Unconditional jump to a label.
    JumpL(usize),
    /// Conditional branch to a label.
    BranchCond(Cond, usize),
    /// Conditional branch to the global fail stub (inline comparisons
    /// branch there when the test fails).
    BranchFail(Cond),
    /// `switch_on_term` with label targets (`None` = fail).
    SwitchOnTermL {
        /// Argument register the dispatch dereferences.
        arg: Reg,
        /// Target when the argument dereferences to a variable.
        on_var: Option<usize>,
        /// Target for constants.
        on_const: Option<usize>,
        /// Target for lists.
        on_list: Option<usize>,
        /// Target for structures.
        on_struct: Option<usize>,
    },
    /// `switch_on_constant` with label targets.
    SwitchOnConstantL {
        /// Argument register the dispatch dereferences.
        arg: Reg,
        /// Fall-through target (`None` = fail).
        default: Option<usize>,
        /// Key → label table.
        table: Vec<(Word, usize)>,
    },
    /// `switch_on_structure` with label targets.
    SwitchOnStructureL {
        /// Argument register the dispatch dereferences.
        arg: Reg,
        /// Fall-through target (`None` = fail).
        default: Option<usize>,
        /// Functor → label table.
        table: Vec<(FunctorId, usize)>,
    },
}

impl AsmItem {
    /// Code words this item will occupy once assembled.
    pub fn size_words(&self) -> usize {
        match self {
            AsmItem::Label(_) => 0,
            AsmItem::Plain(i) => i.size_words(),
            AsmItem::SwitchOnTermL { .. } => 3,
            AsmItem::SwitchOnConstantL { table, .. } => 1 + 2 * table.len(),
            AsmItem::SwitchOnStructureL { table, .. } => 1 + 2 * table.len(),
            _ => 1,
        }
    }
}

/// An assembly-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(usize),
    /// A label was defined twice.
    DuplicateLabel(usize),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label L{l}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label L{l}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Assembles symbolic items into absolute instructions.
///
/// `start` is the code address of the first word; `resolve_pred` maps a
/// predicate to its entry point (the linker's symbol table — unknown
/// predicates are the *linker's* problem, so the closure must always
/// return an address, e.g. of an "unknown predicate" stub); `fail_stub`
/// is the address of the global `fail` instruction.
///
/// Returns the resolved instructions paired with their word addresses.
///
/// # Errors
///
/// Returns [`AsmError`] for undefined or duplicate labels.
pub fn assemble(
    items: &[AsmItem],
    start: CodeAddr,
    resolve_pred: &mut dyn FnMut(&PredId) -> CodeAddr,
    fail_stub: CodeAddr,
) -> Result<Vec<(CodeAddr, Instr)>, AsmError> {
    // Pass 1: label → absolute address.
    let mut labels: HashMap<usize, CodeAddr> = HashMap::new();
    let mut offset = 0u32;
    for item in items {
        if let AsmItem::Label(l) = item {
            if labels.insert(*l, start.offset(offset as i64)).is_some() {
                return Err(AsmError::DuplicateLabel(*l));
            }
        }
        offset += item.size_words() as u32;
    }
    let resolve = |l: &usize| labels.get(l).copied().ok_or(AsmError::UndefinedLabel(*l));
    let resolve_opt = |l: &Option<usize>| -> Result<Option<CodeAddr>, AsmError> {
        match l {
            Some(l) => Ok(Some(resolve(l)?)),
            None => Ok(None),
        }
    };

    // Pass 2: emit.
    let mut out = Vec::new();
    let mut offset = 0u32;
    for item in items {
        let addr = start.offset(offset as i64);
        offset += item.size_words() as u32;
        let instr = match item {
            AsmItem::Label(_) => continue,
            AsmItem::Plain(i) => i.clone(),
            AsmItem::CallPred(p) => Instr::Call {
                addr: resolve_pred(p),
                arity: p.arity,
            },
            AsmItem::ExecutePred(p) => Instr::Execute {
                addr: resolve_pred(p),
                arity: p.arity,
            },
            AsmItem::TryMeElse(l) => Instr::TryMeElse { alt: resolve(l)? },
            AsmItem::RetryMeElse(l) => Instr::RetryMeElse { alt: resolve(l)? },
            AsmItem::TryL(l) => Instr::Try {
                clause: resolve(l)?,
            },
            AsmItem::RetryL(l) => Instr::Retry {
                clause: resolve(l)?,
            },
            AsmItem::TrustL(l) => Instr::Trust {
                clause: resolve(l)?,
            },
            AsmItem::JumpL(l) => Instr::Jump { to: resolve(l)? },
            AsmItem::BranchCond(c, l) => Instr::Branch {
                cond: *c,
                to: resolve(l)?,
            },
            AsmItem::BranchFail(c) => Instr::Branch {
                cond: *c,
                to: fail_stub,
            },
            AsmItem::SwitchOnTermL {
                arg,
                on_var,
                on_const,
                on_list,
                on_struct,
            } => Instr::SwitchOnTerm {
                arg: *arg,
                on_var: resolve_opt(on_var)?,
                on_const: resolve_opt(on_const)?,
                on_list: resolve_opt(on_list)?,
                on_struct: resolve_opt(on_struct)?,
            },
            AsmItem::SwitchOnConstantL {
                arg,
                default,
                table,
            } => Instr::SwitchOnConstant {
                arg: *arg,
                default: resolve_opt(default)?,
                table: table
                    .iter()
                    .map(|(w, l)| Ok((*w, resolve(l)?)))
                    .collect::<Result<_, AsmError>>()?,
            },
            AsmItem::SwitchOnStructureL {
                arg,
                default,
                table,
            } => Instr::SwitchOnStructure {
                arg: *arg,
                default: resolve_opt(default)?,
                table: table
                    .iter()
                    .map(|(f, l)| Ok((*f, resolve(l)?)))
                    .collect::<Result<_, AsmError>>()?,
            },
        };
        out.push((addr, instr));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_preds(_: &PredId) -> CodeAddr {
        CodeAddr::new(0)
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let items = vec![
            AsmItem::Label(0),
            AsmItem::Plain(Instr::Proceed),
            AsmItem::JumpL(1),
            AsmItem::Label(1),
            AsmItem::JumpL(0),
        ];
        let out = assemble(&items, CodeAddr::new(100), &mut no_preds, CodeAddr::new(0)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[1].1,
            Instr::Jump {
                to: CodeAddr::new(102)
            }
        );
        assert_eq!(
            out[2].1,
            Instr::Jump {
                to: CodeAddr::new(100)
            }
        );
    }

    #[test]
    fn multiword_switch_shifts_addresses() {
        let items = vec![
            AsmItem::SwitchOnTermL {
                arg: Reg::new(0),
                on_var: Some(0),
                on_const: None,
                on_list: None,
                on_struct: None,
            },
            AsmItem::Label(0),
            AsmItem::Plain(Instr::Proceed),
        ];
        let out = assemble(&items, CodeAddr::new(0), &mut no_preds, CodeAddr::new(9)).unwrap();
        // switch occupies words 0..3; the label lands at 3.
        assert_eq!(out[0].0, CodeAddr::new(0));
        assert_eq!(out[1].0, CodeAddr::new(3));
        match &out[0].1 {
            Instr::SwitchOnTerm { on_var, .. } => assert_eq!(*on_var, Some(CodeAddr::new(3))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let items = vec![AsmItem::JumpL(7)];
        assert_eq!(
            assemble(&items, CodeAddr::new(0), &mut no_preds, CodeAddr::new(0)),
            Err(AsmError::UndefinedLabel(7))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let items = vec![AsmItem::Label(1), AsmItem::Label(1)];
        assert_eq!(
            assemble(&items, CodeAddr::new(0), &mut no_preds, CodeAddr::new(0)),
            Err(AsmError::DuplicateLabel(1))
        );
    }

    #[test]
    fn branch_fail_uses_stub() {
        let items = vec![AsmItem::BranchFail(Cond::Ge)];
        let out = assemble(&items, CodeAddr::new(4), &mut no_preds, CodeAddr::new(77)).unwrap();
        assert_eq!(
            out[0].1,
            Instr::Branch {
                cond: Cond::Ge,
                to: CodeAddr::new(77)
            }
        );
    }

    #[test]
    fn predicate_resolution_goes_through_closure() {
        let items = vec![AsmItem::CallPred(PredId {
            name: "p".into(),
            arity: 2,
        })];
        let mut seen = Vec::new();
        let out = assemble(
            &items,
            CodeAddr::new(0),
            &mut |p| {
                seen.push(p.clone());
                CodeAddr::new(42)
            },
            CodeAddr::new(0),
        )
        .unwrap();
        assert_eq!(
            out[0].1,
            Instr::Call {
                addr: CodeAddr::new(42),
                arity: 2
            }
        );
        assert_eq!(seen.len(), 1);
    }
}
