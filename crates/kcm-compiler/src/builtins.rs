//! Goal classification.
//!
//! Decides, per body goal, whether it is compiled as a user call, an
//! escape to the host (the paper's built-in mechanism, §2.1/§4.2), an
//! inline unification, or native inline arithmetic (the "integer
//! arithmetic" compilation mode the benchmarks used, §4).

use crate::arith::{self, Expr};
use crate::ir::PredId;
use kcm_arch::isa::Builtin;
use kcm_arch::Cond;
use kcm_prolog::Term;

/// A classified goal.
#[derive(Debug, Clone, PartialEq)]
pub enum GoalKind {
    /// `true` — no code.
    True,
    /// `fail` / `false`.
    Fail,
    /// `!`.
    Cut,
    /// A call to a user predicate with the given arguments.
    UserCall(PredId, Vec<Term>),
    /// An escape to a host built-in with the given arguments.
    Escape(Builtin, Vec<Term>),
    /// `=/2` compiled as inline unification.
    Unify(Term, Term),
    /// `Lhs is Expr` with a natively inlinable expression.
    Is(Term, Expr),
    /// An arithmetic comparison with both sides natively inlinable. The
    /// condition holds when `lhs cond rhs`.
    Compare(Cond, Expr, Expr),
}

impl GoalKind {
    /// Whether this goal transfers control to another predicate (and thus
    /// clobbers CP/B0 and ends a chunk for register allocation).
    pub fn is_user_call(&self) -> bool {
        matches!(self, GoalKind::UserCall(..))
    }

    /// Whether the goal needs the argument registers A1..Ak (user calls
    /// and escapes).
    pub fn call_arity(&self) -> usize {
        match self {
            GoalKind::UserCall(id, _) => id.arity as usize,
            GoalKind::Escape(_, args) => args.len(),
            _ => 0,
        }
    }

    /// Whether the goal is safe inside the clause *guard* — "a possibly
    /// empty series of goals following the head which is known not to
    /// modify the Prolog state of execution" (§3.1.5). Only natively
    /// inlined comparisons and cut qualify: they touch no argument
    /// register and bind nothing.
    pub fn is_guard_safe(&self) -> bool {
        matches!(self, GoalKind::Compare(..) | GoalKind::Cut | GoalKind::True)
    }
}

/// The escape builtins reachable from Prolog source, by name/arity —
/// shared with the machine's meta-call dispatcher.
pub fn escape_builtin(name: &str, arity: usize) -> Option<Builtin> {
    // Arithmetic comparisons dispatch through their escapes at meta-call
    // time (the compiler may inline them statically, but call/1 cannot).
    if arity == 2 {
        if let Some((b, _)) = arith_escape(name) {
            return Some(b);
        }
    }
    if name == "is" && arity == 2 {
        return Some(Builtin::Is);
    }
    escape_for(name, arity)
}

/// The escape builtins reachable from Prolog source, by name/arity.
fn escape_for(name: &str, arity: usize) -> Option<Builtin> {
    Some(match (name, arity) {
        ("write", 1) => Builtin::Write,
        ("print", 1) => Builtin::Write,
        ("nl", 0) => Builtin::Nl,
        ("tab", 1) => Builtin::Tab,
        ("var", 1) => Builtin::Var,
        ("nonvar", 1) => Builtin::Nonvar,
        ("atom", 1) => Builtin::Atom,
        ("atomic", 1) => Builtin::Atomic,
        ("integer", 1) => Builtin::Integer,
        ("float", 1) => Builtin::Float,
        ("number", 1) => Builtin::Number,
        ("callable", 1) => Builtin::Callable,
        ("is_list", 1) => Builtin::IsList,
        ("==", 2) => Builtin::TermEq,
        ("\\==", 2) => Builtin::TermNe,
        ("@<", 2) => Builtin::TermLt,
        ("@>", 2) => Builtin::TermGt,
        ("@=<", 2) => Builtin::TermLe,
        ("@>=", 2) => Builtin::TermGe,
        ("functor", 3) => Builtin::Functor,
        ("arg", 3) => Builtin::Arg,
        ("=..", 2) => Builtin::Univ,
        ("compare", 3) => Builtin::Compare,
        ("length", 2) => Builtin::Length,
        ("halt", 0) => Builtin::Halt,
        ("statistics", 2) => Builtin::Statistics,
        ("name", 2) => Builtin::Name,
        ("copy_term", 2) => Builtin::CopyTerm,
        ("ground", 1) => Builtin::Ground,
        ("atom_codes", 2) => Builtin::AtomCodes,
        ("number_codes", 2) => Builtin::NumberCodes,
        ("atom_length", 2) => Builtin::AtomLength,
        ("unify_with_occurs_check", 2) => Builtin::UnifyOccurs,
        // Internal hook injected by the query linker: reports the bindings
        // of the query variables (any arity up to 16).
        ("$report", _) => Builtin::ReportSolution,
        _ => return None,
    })
}

fn arith_escape(name: &str) -> Option<(Builtin, Cond)> {
    Some(match name {
        "=:=" => (Builtin::ArithEq, Cond::Eq),
        "=\\=" => (Builtin::ArithNe, Cond::Ne),
        "<" => (Builtin::ArithLt, Cond::Lt),
        "=<" => (Builtin::ArithLe, Cond::Le),
        ">" => (Builtin::ArithGt, Cond::Gt),
        ">=" => (Builtin::ArithGe, Cond::Ge),
        _ => return None,
    })
}

/// Classifies one body goal term with KCM's default options.
pub fn classify(goal: &Term) -> GoalKind {
    classify_with(goal, &crate::CompileOptions::default())
}

/// Classifies one body goal term for a given target configuration.
pub fn classify_with(goal: &Term, options: &crate::CompileOptions) -> GoalKind {
    let (name, args): (&str, &[Term]) = match goal {
        Term::Atom(n) => (n.as_str(), &[]),
        Term::Struct(n, a) => (n.as_str(), a.as_slice()),
        // ir::Program rejects variable and numeric goals before this point.
        _ => return GoalKind::Fail,
    };
    match (name, args.len()) {
        ("true", 0) => return GoalKind::True,
        ("fail", 0) | ("false", 0) => return GoalKind::Fail,
        ("!", 0) => return GoalKind::Cut,
        ("=", 2) => return GoalKind::Unify(args[0].clone(), args[1].clone()),
        // The meta-call becomes a real call to the runtime's $call/N
        // trampoline (it clobbers CP like any call). call/2.. appends the
        // extra arguments to the goal.
        ("call", n) if (1..=8).contains(&n) => {
            return GoalKind::UserCall(
                PredId {
                    name: "$call".to_owned(),
                    arity: n as u8,
                },
                args.to_vec(),
            )
        }
        ("is", 2) => {
            if options.inline_arith {
                if let Some(e) = arith::parse_expr(&args[1]) {
                    return GoalKind::Is(args[0].clone(), e);
                }
            }
            return GoalKind::Escape(Builtin::Is, args.to_vec());
        }
        _ => {}
    }
    if args.len() == 2 {
        if let Some((esc, cond)) = arith_escape(name) {
            if options.inline_arith {
                if let (Some(l), Some(r)) =
                    (arith::parse_expr(&args[0]), arith::parse_expr(&args[1]))
                {
                    return GoalKind::Compare(cond, l, r);
                }
            }
            return GoalKind::Escape(esc, args.to_vec());
        }
    }
    if let Some(b) = escape_for(name, args.len()) {
        return GoalKind::Escape(b, args.to_vec());
    }
    GoalKind::UserCall(
        PredId {
            name: name.to_owned(),
            arity: args.len() as u8,
        },
        args.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcm_prolog::read_term;

    fn k(src: &str) -> GoalKind {
        classify(&read_term(src).unwrap())
    }

    #[test]
    fn control_goals() {
        assert_eq!(k("true"), GoalKind::True);
        assert_eq!(k("fail"), GoalKind::Fail);
        assert_eq!(k("!"), GoalKind::Cut);
    }

    #[test]
    fn unification_goal() {
        assert!(matches!(k("X = f(Y)"), GoalKind::Unify(..)));
    }

    #[test]
    fn inline_is_when_expression_is_native() {
        assert!(matches!(k("X is Y + 1"), GoalKind::Is(..)));
        assert!(matches!(k("X is Y * Z mod 7"), GoalKind::Is(..)));
        // An unbound expression variable body cannot be inlined at compile
        // time if the term is not arithmetic shaped.
        assert!(matches!(k("X is foo(Y)"), GoalKind::Escape(Builtin::Is, _)));
    }

    #[test]
    fn inline_comparison() {
        assert!(matches!(k("X < Y + 1"), GoalKind::Compare(Cond::Lt, _, _)));
        assert!(matches!(k("X >= 3"), GoalKind::Compare(Cond::Ge, _, _)));
        assert!(matches!(
            k("f(X) < 2"),
            GoalKind::Escape(Builtin::ArithLt, _)
        ));
    }

    #[test]
    fn escapes() {
        assert!(matches!(k("write(X)"), GoalKind::Escape(Builtin::Write, _)));
        assert!(matches!(k("nl"), GoalKind::Escape(Builtin::Nl, _)));
        assert!(matches!(k("X == Y"), GoalKind::Escape(Builtin::TermEq, _)));
        assert!(matches!(
            k("functor(T, F, A)"),
            GoalKind::Escape(Builtin::Functor, _)
        ));
    }

    #[test]
    fn arity_overload_falls_back_to_user_call() {
        // write/2 is not a known builtin.
        assert!(matches!(k("write(X, Y)"), GoalKind::UserCall(..)));
        assert!(matches!(k("append(X, Y, Z)"), GoalKind::UserCall(..)));
    }

    #[test]
    fn guard_safety() {
        assert!(k("X < 3").is_guard_safe());
        assert!(k("!").is_guard_safe());
        assert!(!k("X is 3").is_guard_safe());
        assert!(!k("integer(X)").is_guard_safe());
        assert!(!k("p(X)").is_guard_safe());
    }
}
