//! Snapshot round-trip tests at the compiler boundary: a linked image
//! must survive save/load bit-for-bit, re-save byte-identically, and
//! classify damaged artifacts.

use kcm_arch::snapshot::{self, SnapshotError};
use kcm_arch::{CodeAddr, Instr, SymbolTable};
use kcm_compiler::{compile_program, CodeImage};

fn build(src: &str) -> (CodeImage, SymbolTable) {
    let clauses = kcm_prolog::read_program(src).unwrap();
    let mut symbols = SymbolTable::new();
    let image = compile_program(&clauses, &mut symbols).unwrap();
    (image, symbols)
}

fn assert_images_equal(a: &CodeImage, b: &CodeImage, syms_a: &SymbolTable, syms_b: &SymbolTable) {
    assert_eq!(a.words(), b.words(), "encoded words differ");
    assert_eq!(a.num_instrs(), b.num_instrs());
    for idx in 0..a.num_instrs() as u32 {
        assert_eq!(a.instr_at_index(idx), b.instr_at_index(idx), "instr {idx}");
        assert_eq!(a.addr_at_index(idx), b.addr_at_index(idx));
        match (a.switch_index(idx), b.switch_index(idx)) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.table_len(), sb.table_len());
                if let Instr::SwitchOnConstant { table, .. } = a.instr_at_index(idx) {
                    for (k, _) in table {
                        assert_eq!(sa.lookup(k.switch_key()), sb.lookup(k.switch_key()));
                    }
                }
            }
            other => panic!("side-table presence differs at {idx}: {other:?}"),
        }
    }
    assert_eq!(a.sizes(), b.sizes());
    assert_eq!(a.warnings(), b.warnings());
    assert_eq!(a.query_vars(), b.query_vars());
    assert_eq!(a.options(), b.options());
    let (base_a, static_a) = a.static_data();
    let (base_b, static_b) = b.static_data();
    assert_eq!(base_a, base_b);
    assert_eq!(static_a, static_b);
    // Disassembly is compared only for symbol-name fidelity: when several
    // entries share an address ($call/N), the label choice is arbitrary.
    assert_eq!(
        a.disassemble(syms_a).lines().count(),
        b.disassemble(syms_b).lines().count()
    );
    let mut ea: Vec<_> = a
        .entries()
        .map(|(n, ar, ad)| (n.to_owned(), ar, ad))
        .collect();
    let mut eb: Vec<_> = b
        .entries()
        .map(|(n, ar, ad)| (n.to_owned(), ar, ad))
        .collect();
    ea.sort();
    eb.sort();
    assert_eq!(ea, eb);
}

const PROGRAM: &str = "
    app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).
    p(1). p(2). p(a). p(b). p(c). p(d). p(e). p(f). p(g). p(h).
    edge(a, b). edge(a, c). edge(b, d). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    lit(f(g(1), [x, y, z])).
    q(X) :- p(X), \\+ X = 1.
";

#[test]
fn round_trip_restores_the_image() {
    let (image, symbols) = build(PROGRAM);
    let bytes = snapshot::save(&image, &symbols);
    let (loaded, loaded_syms) = snapshot::load(&bytes).expect("round trip");
    assert_images_equal(&image, &loaded, &symbols, &loaded_syms);
    assert_eq!(symbols.atom_count(), loaded_syms.atom_count());
    assert_eq!(symbols.functor_count(), loaded_syms.functor_count());
    for name in ["app", "edge", "path", "lit"] {
        assert_eq!(symbols.find_atom(name), loaded_syms.find_atom(name));
    }
}

#[test]
fn resave_is_byte_identical() {
    let (image, symbols) = build(PROGRAM);
    let bytes = snapshot::save(&image, &symbols);
    let (loaded, loaded_syms) = snapshot::load(&bytes).unwrap();
    let again = snapshot::save(&loaded, &loaded_syms);
    assert_eq!(bytes, again, "save(load(save(x))) must be byte-identical");
}

#[test]
fn wide_fact_base_round_trips_with_side_tables() {
    let src: String = (0..64).map(|i| format!("f(k{i}, v{}).\n", i % 7)).collect();
    let (image, symbols) = build(&src);
    let bytes = snapshot::save(&image, &symbols);
    let (loaded, loaded_syms) = snapshot::load(&bytes).unwrap();
    assert_images_equal(&image, &loaded, &symbols, &loaded_syms);
    // The wide switch's hash index must be live after the restore.
    let mut indexed = 0;
    for idx in 0..loaded.num_instrs() as u32 {
        if loaded.switch_index(idx).is_some() {
            indexed += 1;
        }
    }
    assert!(indexed > 0, "expected a restored hash side table");
}

#[test]
fn truncation_is_classed() {
    let (image, symbols) = build("a. b :- a.");
    let bytes = snapshot::save(&image, &symbols);
    for cut in [3, 9, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = snapshot::load(&bytes[..cut]).unwrap_err();
        assert_eq!(err, SnapshotError::Truncated, "cut at {cut}");
    }
}

#[test]
fn corruption_is_classed() {
    let (image, symbols) = build(PROGRAM);
    let bytes = snapshot::save(&image, &symbols);
    for at in [24, bytes.len() / 3, bytes.len() - 9] {
        let mut bad = bytes.clone();
        bad[at] ^= 0x40;
        match snapshot::load(&bad).unwrap_err() {
            SnapshotError::Corrupted(_) => {}
            other => panic!("flip at {at} classified as {other:?}"),
        }
    }
    // Flipping the stored checksum itself is also corruption.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 1;
    assert!(matches!(
        snapshot::load(&bad).unwrap_err(),
        SnapshotError::Corrupted(_)
    ));
}

#[test]
fn bad_magic_and_version_are_classed() {
    let (image, symbols) = build("a.");
    let bytes = snapshot::save(&image, &symbols);
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert_eq!(
        snapshot::load(&wrong_magic).unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        snapshot::load(b"ELF\x7f").unwrap_err(),
        SnapshotError::BadMagic
    );
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        snapshot::load(&future).unwrap_err(),
        SnapshotError::VersionMismatch {
            found: 99,
            supported: snapshot::VERSION
        }
    );
}

#[test]
fn patched_image_round_trips() {
    // Assert a fact in place, snapshot the patched image, and check the
    // grown dispatch state survives (decoded table authoritative even
    // where the encoded site is stale).
    let src: String = (0..20)
        .map(|i| format!("p(k{i}, v{i}).\n", i = i))
        .collect();
    let clauses = kcm_prolog::read_program(&src).unwrap();
    let mut symbols = SymbolTable::new();
    let mut image = compile_program(&clauses, &mut symbols).unwrap();
    let pred = kcm_arch::PredId {
        name: "p".into(),
        arity: 2,
    };
    let fact = kcm_prolog::read_term("p(k_new, v_new)").unwrap();
    let code = kcm_compiler::compile_fact_instrs(
        &pred,
        &fact,
        &mut symbols,
        &kcm_arch::CompileOptions::default(),
    )
    .unwrap()
    .expect("atomic fact qualifies");
    let entry = image.entry("p", 2).unwrap();
    let key1 = kcm_arch::Word::atom(symbols.atom("k_new"));
    let key2 = kcm_arch::Word::atom(symbols.atom("v_new"));
    image
        .assert_fact_clause(entry, key1, Some(key2), &code)
        .expect("in-place assert");

    let bytes = snapshot::save(&image, &symbols);
    let (loaded, loaded_syms) = snapshot::load(&bytes).unwrap();
    assert_images_equal(&image, &loaded, &symbols, &loaded_syms);
    let again = snapshot::save(&loaded, &loaded_syms);
    assert_eq!(bytes, again);
}

#[test]
fn empty_slice_is_truncated_not_magic() {
    assert_eq!(snapshot::load(b"").unwrap_err(), SnapshotError::Truncated);
    assert_eq!(
        snapshot::load(b"KCM").unwrap_err(),
        SnapshotError::Truncated
    );
}

#[test]
fn entries_expose_stub_trampolines() {
    let (image, _) = build("a.");
    // $call/1..8 share the trampoline stub; snapshot must preserve them.
    for n in 1..=8u8 {
        assert_eq!(image.entry("$call", n), Some(CodeAddr::new(4)));
    }
}
