//! Table-driven negative-path tests: every rejected program must fail
//! with the *exact* [`CompileError`] variant, so error reporting stays
//! stable as the compiler grows.

use kcm_compiler::{compile_program, compile_query, CompileError};

fn compile(src: &str) -> Result<(), CompileError> {
    let clauses = kcm_prolog::read_program(src).expect("test sources must parse");
    let mut symbols = kcm_arch::SymbolTable::new();
    compile_program(&clauses, &mut symbols).map(|_| ())
}

/// Expected error shapes, comparable without string-matching messages.
#[derive(Debug, PartialEq)]
enum Expected {
    BadClauseHead,
    UnsupportedDirective,
    ArityTooLarge { pred: &'static str, arity: usize },
    TooManyPermanents { pred: &'static str },
    DynamicCodeUnsupported,
}

fn classify(e: &CompileError) -> Option<Expected> {
    Some(match e {
        CompileError::BadClauseHead(_) => Expected::BadClauseHead,
        CompileError::UnsupportedDirective(_) => Expected::UnsupportedDirective,
        CompileError::ArityTooLarge { pred, arity } => Expected::ArityTooLarge {
            pred: match pred.as_str() {
                "p" => "p",
                "q" => "q",
                _ => return None,
            },
            arity: *arity,
        },
        CompileError::TooManyPermanents { pred } => Expected::TooManyPermanents {
            pred: match pred.as_str() {
                "p" => "p",
                _ => return None,
            },
        },
        _ => return None,
    })
}

#[test]
fn rejected_programs_report_exact_variants() {
    let arity17_head = format!(
        "p({}).",
        (1..=17)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let arity17_call = format!(
        "p :- q({}).",
        (1..=17)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let vars300 = (0..300)
        .map(|i| format!("W{i}"))
        .collect::<Vec<_>>()
        .join(",");
    let perms300 = format!("p :- q(f({vars300})), r(f({vars300})).");

    let table: Vec<(&str, String, Expected)> = vec![
        (
            "integer clause head",
            "42.".to_owned(),
            Expected::BadClauseHead,
        ),
        (
            "integer body goal",
            "p :- 42.".to_owned(),
            Expected::BadClauseHead,
        ),
        (
            "float body goal",
            "p :- 1.5.".to_owned(),
            Expected::BadClauseHead,
        ),
        (
            "control functor as head",
            "!.".to_owned(),
            Expected::BadClauseHead,
        ),
        ("nil as head", "[].".to_owned(), Expected::BadClauseHead),
        (
            "arrow as head",
            "(a -> b).".to_owned(),
            Expected::BadClauseHead,
        ),
        (
            "directive",
            ":- foo.".to_owned(),
            Expected::UnsupportedDirective,
        ),
        (
            "query directive",
            "?- foo.".to_owned(),
            Expected::UnsupportedDirective,
        ),
        (
            "head arity beyond A1..A16",
            arity17_head,
            Expected::ArityTooLarge {
                pred: "p",
                arity: 17,
            },
        ),
        (
            // The error names the clause being compiled, not the callee.
            "call arity beyond A1..A16",
            arity17_call,
            Expected::ArityTooLarge {
                pred: "p",
                arity: 17,
            },
        ),
        (
            "too many permanent variables",
            perms300,
            Expected::TooManyPermanents { pred: "p" },
        ),
        (
            "defining assert",
            "assert(x) :- true.".to_owned(),
            Expected::DynamicCodeUnsupported,
        ),
        (
            "defining retract",
            "retract(x).".to_owned(),
            Expected::DynamicCodeUnsupported,
        ),
    ];

    for (what, src, expected) in table {
        let err = compile(&src).expect_err(&format!("{what}: expected a compile error\n{src}"));
        let got = match &err {
            CompileError::DynamicCodeUnsupported(_) => Expected::DynamicCodeUnsupported,
            other => {
                classify(other).unwrap_or_else(|| panic!("{what}: unexpected error {other:?}"))
            }
        };
        assert_eq!(got, expected, "{what}: got {err:?}");
    }
}

#[test]
fn query_with_too_many_variables_is_rejected() {
    let clauses = kcm_prolog::read_program("p(1).").unwrap();
    let mut symbols = kcm_arch::SymbolTable::new();
    let image = compile_program(&clauses, &mut symbols).unwrap();
    let vars = (0..17)
        .map(|i| format!("Q{i}"))
        .collect::<Vec<_>>()
        .join(",");
    let goal = kcm_prolog::read_term(&format!("p(1), f({vars}) = f({vars})")).unwrap();
    let err = compile_query(&image, &goal, &mut symbols).unwrap_err();
    assert_eq!(err, CompileError::TooManyQueryVars(17));
}

#[test]
fn empty_directive_does_not_define_a_neck_predicate() {
    // `:- .` parses as the atom `:-`; it must be rejected as a head, not
    // silently define a predicate named `:-`.
    let err = compile(":- .").unwrap_err();
    assert!(matches!(err, CompileError::BadClauseHead(_)), "{err:?}");
}

#[test]
fn bad_arithmetic_is_a_runtime_error_not_a_compile_error() {
    // Non-native arithmetic (unknown evaluable functors, atoms) must
    // *compile* — it falls back to the `is/2` escape and faults at run
    // time with a type error, identically across engines.
    compile("p(R) :- R is foo(1).").expect("escape arithmetic compiles");
    compile("p(R) :- R is bar.").expect("atom RHS compiles");
    let mut kcm = kcm_system::Kcm::new();
    kcm.load("p(R) :- R is foo(1).").unwrap();
    let err = kcm
        .query("p(R)", &kcm_system::QueryOpts::all())
        .unwrap_err();
    assert!(
        matches!(
            &err,
            kcm_system::KcmError::Machine(kcm_cpu::MachineError::TypeFault(_))
        ),
        "{err:?}"
    );
}

#[test]
fn unlinkable_calls_warn_and_fail_cleanly() {
    // Calls to predicates that exist nowhere are linked to a fail stub:
    // consult succeeds, a warning names the call site, and the query
    // fails rather than faulting.
    let mut kcm = kcm_system::Kcm::new();
    kcm.load("p :- missing_helper(1, 2).").unwrap();
    let warnings = kcm.warnings();
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(
        warnings[0].contains("missing_helper/2") && warnings[0].contains("p/0"),
        "{warnings:?}"
    );
    let outcome = kcm.query("p", &kcm_system::QueryOpts::all()).unwrap();
    assert!(!outcome.success);
    assert!(outcome.solutions.is_empty());
}
