//! The SPUR baseline: a RISC macro-expansion code-size model (Table 1).
//!
//! SPUR is "a general-purpose RISC architecture that supports tagged data
//! developed at U.C. Berkeley" (§4.1). Borriello et al. ("RISCs vs. CISCs
//! for Prolog: A Case Study", ASPLOS II, 1987 — the paper's source for the
//! SPUR column) generated SPUR Prolog code by macro-expanding each WAM
//! instruction into an inline sequence of RISC operations: dereference
//! loops, tag dispatch, trail checks and heap traffic all become explicit
//! instructions. The result is code "more than 6 times bigger" than KCM's
//! already-large 64-bit encoding, with 4-byte instructions.
//!
//! This crate reproduces the mechanism: a per-WAM-instruction expansion
//! table applied to the compiled stream.

#![warn(missing_docs)]

use kcm_arch::Instr;
use kcm_system::KcmError;

/// SPUR instruction width in bytes.
pub const SPUR_INSTR_BYTES: usize = 4;

/// Static code size of a program under the SPUR expansion model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpurSize {
    /// SPUR (RISC) instruction count.
    pub instrs: usize,
    /// SPUR code bytes (4 bytes per instruction).
    pub bytes: usize,
}

/// RISC operations one WAM instruction macro-expands into.
///
/// The factors follow the structure of Borriello et al.'s expansions: a
/// full unification instruction inlines a dereference loop (≈6 ops), a
/// two-way tag dispatch (≈4 ops), both the read and the write case
/// (≈8–12 ops each including the trail check), while control transfers
/// stay near one instruction.
pub fn expansion(i: &Instr) -> usize {
    match i {
        // KCM compilation artifacts: no SPUR counterpart.
        Instr::Neck | Instr::Mark => 0,
        // Control transfers are cheap on a RISC.
        Instr::Proceed | Instr::Jump { .. } => 2,
        Instr::Call { .. } | Instr::Execute { .. } => 4,
        Instr::Allocate { .. } => 8,
        Instr::Deallocate => 6,
        // Choice-point management moves a frame to memory word by word.
        Instr::TryMeElse { .. } | Instr::Try { .. } => 24,
        Instr::RetryMeElse { .. } | Instr::Retry { .. } => 12,
        Instr::TrustMe | Instr::Trust { .. } => 10,
        Instr::Cut | Instr::CutEnv => 8,
        Instr::Fail => 20,
        // Register moves.
        Instr::GetVariable { .. } | Instr::PutValue { .. } => 1,
        Instr::GetVariableY { .. } | Instr::PutValueY { .. } | Instr::PutVariableY { .. } => 3,
        Instr::PutVariable { .. } => 4,
        Instr::PutUnsafeValue { .. } => 12,
        Instr::PutConstant { .. } | Instr::PutNil { .. } => 2,
        Instr::PutList { .. } => 3,
        Instr::PutStructure { .. } => 5,
        // Full unification: deref loop + tag dispatch + bind-with-trail
        // or compare, inlined at every site.
        Instr::GetValue { .. } | Instr::GetValueY { .. } => 30,
        Instr::GetConstant { .. } | Instr::GetNil { .. } => 22,
        Instr::GetList { .. } => 18,
        Instr::GetStructure { .. } => 24,
        Instr::UnifyVariable { .. } | Instr::UnifyVariableY { .. } => 6,
        Instr::UnifyValue { .. } | Instr::UnifyValueY { .. } => 28,
        Instr::UnifyLocalValue { .. } | Instr::UnifyLocalValueY { .. } => 30,
        Instr::UnifyConstant { .. } | Instr::UnifyNil => 20,
        Instr::UnifyVoid { .. } => 5,
        Instr::UnifyTailList => 8,
        // Switches: tag extraction, bounds checks, dispatch; tables cost
        // code for the probe sequence.
        Instr::SwitchOnTerm { .. } => 10,
        Instr::SwitchOnConstant { table, .. } => 8 + 3 * table.len(),
        Instr::SwitchOnStructure { table, .. } => 8 + 3 * table.len(),
        // Escapes: argument marshalling and a call into the runtime.
        Instr::Escape { .. } => 6,
        Instr::Halt { .. } => 1,
        // Native arithmetic maps one-to-one onto RISC arithmetic with a
        // couple of tag operations.
        Instr::Alu { .. } => 3,
        Instr::CmpRegs { .. } => 2,
        Instr::Branch { .. } => 1,
        Instr::Deref { .. } => 6,
        Instr::Move2 { .. } => 2,
        Instr::LoadConst { .. } => 2,
        Instr::TvmSwap { .. } | Instr::TvmGc { .. } => 2,
        Instr::Load { .. } | Instr::Store { .. } => 2,
        Instr::LoadDirect { .. } | Instr::StoreDirect { .. } => 2,
        _ => 2,
    }
}

/// Computes the SPUR static size of `source` by macro-expanding the
/// compiled WAM stream (compiled with the standard-WAM options Borriello
/// et al. used — no KCM-specific instructions).
///
/// # Errors
///
/// Propagates parse and compile errors.
pub fn static_size(source: &str) -> Result<SpurSize, KcmError> {
    let model = wam_baseline::BaselineModel::standard_wam("spur", 100.0);
    let instrs = wam_baseline::compiled_instructions(&model, source, &["main_star"])?;
    let count: usize = instrs.iter().map(expansion).sum();
    Ok(SpurSize {
        instrs: count,
        bytes: count * SPUR_INSTR_BYTES,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_large_for_unification() {
        use kcm_arch::isa::Reg;
        let get_value = Instr::GetValue {
            x: Reg::new(1),
            a: Reg::new(0),
        };
        let proceed = Instr::Proceed;
        assert!(expansion(&get_value) > 10 * expansion(&proceed) / 2);
    }

    #[test]
    fn kcm_artifacts_expand_to_nothing() {
        assert_eq!(expansion(&Instr::Neck), 0);
        assert_eq!(expansion(&Instr::Mark), 0);
    }

    #[test]
    fn spur_code_is_several_times_larger_than_wam() {
        let src = "
            app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).
            nrev([],[]). nrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).
        ";
        let spur = static_size(src).unwrap();
        let model = wam_baseline::BaselineModel::standard_wam("ref", 100.0);
        let (wam_instrs, _) = wam_baseline::compiled_sizes(&model, src).unwrap();
        let factor = spur.instrs as f64 / wam_instrs as f64;
        assert!(factor > 4.0, "expansion factor {factor}");
        assert_eq!(spur.bytes, spur.instrs * 4);
    }
}
