//! The KCM native execution tier: same machine, no cycle model.
//!
//! The cycle-accurate simulator answers "how fast was the 1989 hardware";
//! a *service* only asks "what is the answer". This crate instantiates
//! the interpreter core of `kcm-cpu` — the exact same decoded instruction
//! stream, dispatch loop, shallow backtracking, MWAC unification and
//! builtin set — over [`FlatMem`], a flat uncosted store. Because
//! [`kcm_mem::DataMem::SIMULATED`] is `false` here, monomorphization
//! strips every cycle charge, the cache/MMU/page-table model, the
//! prefetch pipeline and the per-instruction profile attribution out of
//! the compiled hot loop; what remains is a plain enum-dispatch
//! interpreter with pre-resolved fall-through indices.
//!
//! What carries over unchanged — and is proven equivalent by the
//! differential oracle in `kcm-difftest`:
//!
//! * solutions (values and order), printed output, inference counts;
//! * error classes, including [`kcm_cpu::MachineError::BudgetExhausted`]
//!   at the same step count (the step budget counts retired
//!   instructions, not cycles, precisely so it is tier-independent);
//! * zone checking: [`FlatMem`] runs the same [`ZoneTable`] as the
//!   simulator, so zone faults, write protection of the static area and
//!   on-demand zone growth behave identically.
//!
//! What is deliberately *not* modelled: cycles (always 0), cache and
//! MMU statistics (always 0), the 32 MByte physical-memory board (a
//! [`FlatMem`] zone holds up to its full 16M-word region). The cycle
//! simulator remains the fidelity reference; see DESIGN.md §6f.
//!
//! # Examples
//!
//! ```
//! use kcm_arch::SymbolTable;
//! use kcm_cpu::MachineConfig;
//! use kcm_native::NativeMachine;
//!
//! let mut symbols = SymbolTable::new();
//! let program = kcm_prolog::read_program("p(1). p(2).").unwrap();
//! let image = kcm_compiler::compile_program(&program, &mut symbols).unwrap();
//! let goal = kcm_prolog::read_term("p(X)").unwrap();
//! let (qimage, vars) = kcm_compiler::compile_query(&image, &goal, &mut symbols).unwrap();
//! let mut m = kcm_native::native_machine(qimage, symbols, MachineConfig::default());
//! let outcome = m.run_query(&vars, true).unwrap();
//! assert_eq!(outcome.solutions.len(), 2);
//! assert_eq!(outcome.stats.cycles, 0); // no clock on this tier
//! ```

#![warn(missing_docs)]

use kcm_arch::timing::Cycles;
use kcm_arch::zone::ZONE_GRANULARITY_WORDS;
use kcm_arch::{Tag, VAddr, Word, Zone};
use kcm_mem::{DataMem, MemConfig, MemFault, ZoneTable};
use std::cell::RefCell;

/// The native machine: the `kcm-cpu` interpreter core over [`FlatMem`].
pub type NativeMachine = kcm_cpu::Machine<FlatMem>;

/// Creates a native machine loaded with `image` — the native tier's
/// spelling of `Machine::new`.
pub fn native_machine(
    image: kcm_compiler::CodeImage,
    symbols: kcm_arch::SymbolTable,
    cfg: kcm_cpu::MachineConfig,
) -> NativeMachine {
    NativeMachine::with_backend(std::sync::Arc::new(image), symbols, cfg)
}

/// Words per allocation chunk when a zone vector grows: the simulator's
/// page size (16K words), so first-touch granularity matches.
const CHUNK_WORDS: usize = 16 * 1024;

/// How many retired backing stores a thread keeps for reuse.
const POOL_DEPTH: usize = 4;

/// A store whose vectors total more than this many words is freed rather
/// than pooled (a query that built a giant heap must not pin it forever).
const POOL_MAX_TOTAL_WORDS: usize = 16 << 20;

thread_local! {
    /// Retired backing stores, reused by the next [`FlatMem`] built on
    /// this thread. The arrays keep their *length* (the pages the kernel
    /// has already faulted in and the allocator already owns); the next
    /// owner re-zeroes them on acquisition, which is much cheaper than
    /// first-touching fresh pages inside the query run. This is the
    /// native tier's analogue of a runtime pre-allocating its stacks.
    static STORE_POOL: RefCell<Vec<[Vec<Word>; 16]>> = const { RefCell::new(Vec::new()) };
}

/// A flat, uncosted data memory: one growable `Vec<Word>` per zone
/// nibble, indexed by the offset within the zone's 16M-word region.
///
/// Fresh cells read as [`Word::ZERO`] — the integer-zero bit pattern —
/// exactly like the simulator's zero-filled memory board, so a program
/// that (illegally but observably) reads never-written memory sees the
/// same words on both tiers. Zone checking reuses the simulator's
/// [`ZoneTable`] verbatim: same limits, same growth protocol, same
/// faults. The machine's own data accesses additionally take a fast
/// path (see [`DataMem::read_data_addr`]): per-zone admitted windows
/// are mirrored out of the zone table into two flat range arrays, so
/// the common in-limits access costs one compare instead of the full
/// check chain; any access outside its window falls back to the exact
/// checked path, and any mutation of the zone table (growth, write
/// protection) invalidates the mirror.
#[derive(Debug)]
pub struct FlatMem {
    zone_check: bool,
    zones: ZoneTable,
    /// Mirror of the zone table is out of date (`zones_mut` was handed
    /// out since the last refresh).
    stale: bool,
    /// Per address-nibble window `[lo, lo+span)` of values a `DataPtr`
    /// read is admitted into without consulting the zone table. Empty
    /// (`span == 0`) for nibbles that must take the slow path.
    read_win: [(u32, u32); 16],
    /// Same for writes (empty when the zone is write-protected).
    write_win: [(u32, u32); 16],
    /// One store per 4-bit zone field of the virtual address. Only the
    /// five data zones are ever touched by checked accesses; the host
    /// back-door (`peek`/`poke`) is as permissive as the simulator's.
    store: [Vec<Word>; 16],
}

impl FlatMem {
    #[inline]
    fn split(addr: VAddr) -> (usize, usize) {
        let v = addr.value();
        (((v >> 24) & 0xF) as usize, (v & 0x00FF_FFFF) as usize)
    }

    #[inline]
    fn load(&self, addr: VAddr) -> Word {
        let (z, off) = Self::split(addr);
        self.store[z].get(off).copied().unwrap_or(Word::ZERO)
    }

    #[inline]
    fn store_word(&mut self, addr: VAddr, w: Word) {
        let (z, off) = Self::split(addr);
        let v = &mut self.store[z];
        if off >= v.len() {
            let len = (off + 1).next_multiple_of(CHUNK_WORDS);
            v.resize(len, Word::ZERO);
        }
        v[off] = w;
    }

    /// Rebuilds the admitted-window mirror from the zone table. The
    /// windows reproduce [`ZoneTable`]'s acceptance for `DataPtr`
    /// accesses exactly: block-granular limits when the zone check is
    /// on, the whole populated region when it is off (protection off
    /// admits everything the address map can reach). A window that
    /// would not sit inside its zone's region is left empty, so the
    /// slow path — not the mirror — decides the odd cases.
    fn refresh(&mut self) {
        self.stale = false;
        self.read_win = [(0, 0); 16];
        self.write_win = [(0, 0); 16];
        const G: u32 = ZONE_GRANULARITY_WORDS;
        for z in Zone::DATA_ZONES {
            let nib = (z.base().value() >> 24) as usize & 0xF;
            if self.zone_check {
                let lim = self.zones.limits(z);
                let lo = (lim.start().value() / G) * G;
                let hi = lim.end().value().div_ceil(G) * G;
                if lo >= z.base().value() && hi <= z.region_end().value() && lo <= hi {
                    self.read_win[nib] = (lo, hi - lo);
                    self.write_win[nib] = (lo, if lim.is_write_protected() { 0 } else { hi - lo });
                }
            } else {
                let lo = z.base().value();
                let span = z.region_end().value() - lo;
                self.read_win[nib] = (lo, span);
                self.write_win[nib] = (lo, span);
            }
        }
        if !self.zone_check {
            // With protection off the checked path also admits DataPtr
            // accesses into the code region (it only validates the tag).
            let nib = (Zone::Code.base().value() >> 24) as usize & 0xF;
            let lo = Zone::Code.base().value();
            let span = Zone::Code.region_end().value() - lo;
            self.read_win[nib] = (lo, span);
            self.write_win[nib] = (lo, span);
        }
    }

    /// Off-window read: rebuild a stale mirror and retry, else take the
    /// checked path. Kept out of line so [`DataMem::read_data_addr`]'s
    /// body stays small enough to inline into the interpreter.
    #[inline(never)]
    fn read_slow(&mut self, addr: VAddr) -> Result<(Word, Cycles), MemFault> {
        if self.stale {
            self.refresh();
            let v = addr.value();
            let z = ((v >> 24) & 0xF) as usize;
            let (lo, span) = self.read_win[z];
            if v.wrapping_sub(lo) < span {
                let off = (v & 0x00FF_FFFF) as usize;
                return Ok((self.store[z].get(off).copied().unwrap_or(Word::ZERO), 0));
            }
        }
        self.read_ptr(Word::ptr(Tag::DataPtr, addr))
    }

    /// Off-window or beyond-populated-prefix write: rebuild a stale
    /// mirror, grow the zone vector for an admitted write past its
    /// current length, else take the checked path. Out of line for the
    /// same reason as [`FlatMem::read_slow`].
    #[inline(never)]
    fn write_slow(&mut self, addr: VAddr, value: Word) -> Result<Cycles, MemFault> {
        if self.stale {
            self.refresh();
        }
        let v = addr.value();
        let z = ((v >> 24) & 0xF) as usize;
        let (lo, span) = self.write_win[z];
        if v.wrapping_sub(lo) < span {
            self.store_word(addr, value);
            return Ok(0);
        }
        self.write_ptr(Word::ptr(Tag::DataPtr, addr), value)
    }
}

impl Drop for FlatMem {
    fn drop(&mut self) {
        let store = std::mem::take(&mut self.store);
        let total: usize = store.iter().map(Vec::len).sum();
        if total == 0 || total > POOL_MAX_TOTAL_WORDS {
            return;
        }
        STORE_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_DEPTH {
                pool.push(store);
            }
        });
    }
}

impl DataMem for FlatMem {
    const SIMULATED: bool = false;

    fn with_config(config: MemConfig) -> FlatMem {
        let store = STORE_POOL
            .with(|pool| pool.borrow_mut().pop())
            .map(|mut store| {
                // Pages stay mapped; contents must read as fresh memory.
                for v in &mut store {
                    v.fill(Word::ZERO);
                }
                store
            })
            .unwrap_or_else(|| std::array::from_fn(|_| Vec::new()));
        let mut mem = FlatMem {
            zone_check: config.zone_check,
            zones: ZoneTable::new(),
            stale: false,
            read_win: [(0, 0); 16],
            write_win: [(0, 0); 16],
            store,
        };
        mem.refresh();
        mem
    }

    fn zones(&self) -> &ZoneTable {
        &self.zones
    }

    fn zones_mut(&mut self) -> &mut ZoneTable {
        // Empty the windows as well as flagging the mirror stale: the hot
        // paths then need no staleness test at all — a stale mirror admits
        // nothing, so every access funnels into the slow helpers, and the
        // first one rebuilds the mirror.
        self.stale = true;
        self.read_win = [(0, 0); 16];
        self.write_win = [(0, 0); 16];
        &mut self.zones
    }

    #[inline]
    fn read_ptr(&mut self, ptr: Word) -> Result<(Word, Cycles), MemFault> {
        let addr = ptr.as_addr().ok_or(MemFault::NotAnAddress(ptr))?;
        if self.zone_check {
            self.zones.check_read(ptr)?;
        }
        Ok((self.load(addr), 0))
    }

    #[inline]
    fn write_ptr(&mut self, ptr: Word, value: Word) -> Result<Cycles, MemFault> {
        let addr = ptr.as_addr().ok_or(MemFault::NotAnAddress(ptr))?;
        if self.zone_check {
            self.zones.check_write(ptr)?;
        }
        self.store_word(addr, value);
        Ok(0)
    }

    #[inline]
    fn read_data_addr(&mut self, addr: VAddr) -> Result<(Word, Cycles), MemFault> {
        let v = addr.value();
        let z = ((v >> 24) & 0xF) as usize;
        let (lo, span) = self.read_win[z];
        if v.wrapping_sub(lo) < span {
            let off = (v & 0x00FF_FFFF) as usize;
            return Ok((self.store[z].get(off).copied().unwrap_or(Word::ZERO), 0));
        }
        self.read_slow(addr)
    }

    #[inline]
    fn write_data_addr(&mut self, addr: VAddr, value: Word) -> Result<Cycles, MemFault> {
        let v = addr.value();
        let z = ((v >> 24) & 0xF) as usize;
        let (lo, span) = self.write_win[z];
        if v.wrapping_sub(lo) < span {
            let off = (v & 0x00FF_FFFF) as usize;
            if let Some(slot) = self.store[z].get_mut(off) {
                *slot = value;
                return Ok(0);
            }
        }
        self.write_slow(addr, value)
    }

    #[inline]
    fn peek(&mut self, addr: VAddr) -> Result<Word, MemFault> {
        Ok(self.load(addr))
    }

    #[inline]
    fn poke(&mut self, addr: VAddr, value: Word) -> Result<(), MemFault> {
        self.store_word(addr, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcm_arch::{SymbolTable, Tag, Zone};
    use kcm_cpu::{Machine, MachineConfig};

    fn machines(program: &str, query: &str) -> (Machine, NativeMachine) {
        let clauses = kcm_prolog::read_program(program).unwrap();
        let mut symbols = SymbolTable::new();
        let image = kcm_compiler::compile_program(&clauses, &mut symbols).unwrap();
        let goal = kcm_prolog::read_term(query).unwrap();
        let (qimage, vars) = kcm_compiler::compile_query(&image, &goal, &mut symbols).unwrap();
        let cfg = MachineConfig::default();
        let sim = Machine::new(qimage.clone(), symbols.clone(), cfg.clone());
        let native = native_machine(qimage, symbols, cfg);
        let _ = vars;
        (sim, native)
    }

    fn run_both(program: &str, query: &str) -> (kcm_cpu::Outcome, kcm_cpu::Outcome) {
        let clauses = kcm_prolog::read_program(program).unwrap();
        let mut symbols = SymbolTable::new();
        let image = kcm_compiler::compile_program(&clauses, &mut symbols).unwrap();
        let goal = kcm_prolog::read_term(query).unwrap();
        let (qimage, vars) = kcm_compiler::compile_query(&image, &goal, &mut symbols).unwrap();
        let cfg = MachineConfig::default();
        let mut sim = Machine::new(qimage.clone(), symbols.clone(), cfg.clone());
        let mut native = native_machine(qimage, symbols, cfg);
        let a = sim.run_query(&vars, true).unwrap();
        let b = native.run_query(&vars, true).unwrap();
        (a, b)
    }

    #[test]
    fn flat_mem_roundtrips_and_zero_fills() {
        let mut m = FlatMem::with_config(MemConfig::default());
        let a = VAddr::new(Zone::Global.base().value() + 100);
        assert_eq!(m.peek(a).unwrap(), Word::ZERO);
        let ptr = Word::ptr(Tag::Ref, a);
        m.write_ptr(ptr, Word::int(7)).unwrap();
        assert_eq!(m.read_ptr(ptr).unwrap().0.as_int(), Some(7));
        // Neighbouring never-written cell still reads as integer zero.
        assert_eq!(m.peek(a.offset(1)).unwrap(), Word::ZERO);
    }

    #[test]
    fn flat_mem_enforces_the_same_zone_rules() {
        let mut m = FlatMem::with_config(MemConfig::default());
        let bad = Word::pack(Tag::List, Zone::Local, Zone::Local.base().value());
        assert!(matches!(m.read_ptr(bad), Err(MemFault::Zone(_))));
        assert!(matches!(
            m.read_ptr(Word::int(3)),
            Err(MemFault::NotAnAddress(_))
        ));
    }

    #[test]
    fn native_solutions_match_the_simulator() {
        let (a, b) = run_both(
            "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).",
            "app(X, Y, [1,2,3])",
        );
        assert_eq!(a.success, b.success);
        assert_eq!(a.solutions, b.solutions);
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats.inferences, b.stats.inferences);
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert!(a.stats.cycles > 0);
        assert_eq!(b.stats.cycles, 0);
    }

    #[test]
    fn native_output_matches_the_simulator() {
        let (a, b) = run_both("greet :- write(hello), nl, write([a,b|c]), nl.", "greet");
        assert_eq!(a.output, b.output);
        assert!(!b.output.is_empty());
    }

    #[test]
    fn native_static_zone_is_write_protected_too() {
        // The loader write-protects the static area on both tiers; a
        // machine is still constructible and runnable afterwards.
        let (mut sim, mut native) = machines("p(f(1)). p(f(2)).", "p(f(X))");
        let a = sim.run_query(&["X".to_owned()], true).unwrap();
        let b = native.run_query(&["X".to_owned()], true).unwrap();
        assert_eq!(a.solutions, b.solutions);
    }

    #[test]
    fn native_budget_trips_at_the_same_step_count() {
        let clauses = kcm_prolog::read_program("loop :- loop.").unwrap();
        let mut symbols = SymbolTable::new();
        let image = kcm_compiler::compile_program(&clauses, &mut symbols).unwrap();
        let goal = kcm_prolog::read_term("loop").unwrap();
        let (qimage, vars) = kcm_compiler::compile_query(&image, &goal, &mut symbols).unwrap();
        let cfg = MachineConfig {
            step_budget: 5_000,
            ..Default::default()
        };
        let mut sim = Machine::new(qimage.clone(), symbols.clone(), cfg.clone());
        let mut native = native_machine(qimage, symbols, cfg);
        let a = sim.run_query(&vars, false).unwrap_err();
        let b = native.run_query(&vars, false).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn native_zone_growth_matches() {
        // Build a structure big enough to outgrow the default 1M-word
        // global zone? Too slow for a unit test — instead check the
        // growth counter parity on a heap-allocating run.
        let (a, b) = run_both(
            "len([],0). len([_|T],N) :- len(T,M), N is M + 1.",
            "len([1,2,3,4,5,6,7,8], N)",
        );
        assert_eq!(a.stats.zone_growths, b.stats.zone_growths);
        assert_eq!(a.solutions, b.solutions);
    }
}
