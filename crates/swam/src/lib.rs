//! The software-WAM emulator model standing in for Quintus 2.0 on a
//! SUN3/280 (paper Table 3).
//!
//! The paper measured "one of the best commercial systems, QUINTUS 2.0,
//! running on a SUN3/280 workstation (M68020 25MHz, FPU 20MHz, 16Mbytes of
//! main memory)". Quintus is a byte-code WAM emulated in software: every
//! abstract-machine step pays host instructions for fetch/decode/dispatch,
//! software tag manipulation, software trail checks and a memory system
//! without any Prolog assists. The model expresses exactly those taxes as
//! host-cycle costs at the 68020's 40 ns clock.
//!
//! Table 3's footnote also applies: "Quintus does not allow the integer
//! arithmetic and static linking optimisations" — the model compiles with
//! escape-based arithmetic, and the call costs include the indirect
//! dispatch of dynamic linking.

#![warn(missing_docs)]

use kcm_arch::CostModel;
use kcm_system::{KcmError, QueryOpts};
use wam_baseline::BaselineModel;

/// Host cycle time: 40 ns (25 MHz M68020).
pub const SUN3_CYCLE_NS: f64 = 40.0;

/// The Quintus-class software-WAM model.
///
/// Cost rationale (all in 68020 cycles):
///
/// * `instr_overhead` 10: byte fetch + dispatch through a jump table —
///   the core tax of software emulation;
/// * `heap_read`/`heap_write` 4: memory access plus software tag
///   masking/insertion;
/// * `unify_dispatch` 6: a conditional tree instead of KCM's MWAC;
/// * `trail_check_sw` 4: three compares and a branch, §3.1.5's point;
/// * `deref_link` 3: pointer chase with tag test per link;
/// * `jump`/`proceed` 12: procedure-call sequences through memory,
///   including the indirect calls of dynamic linking (§4.2 notes fast
///   indirect calls cost KCM only 4 cycles — the 68020 pays far more);
/// * `choice_point_fixed` 48 / `choice_point_per_reg` 6 / `trail_push` 8:
///   choice points are full C structure writes with software state
///   save/restore — the dominant cost of backtracking-heavy programs
///   (the paper: "as soon as the execution backtracks, higher ratios are
///   observed");
/// * `int_mul` 350 / `int_div` 650: generic (boxed, overflow-checked)
///   arithmetic around the 68020's already slow MULS/DIVS;
/// * `escape_base` 50: C-level built-in entry/exit.
pub fn model() -> BaselineModel {
    let mut m = BaselineModel::standard_wam("swam", SUN3_CYCLE_NS);
    m.cost = CostModel {
        cycle_ns: SUN3_CYCLE_NS,
        instr_overhead: 10,
        reg_op: 2,
        heap_read: 4,
        heap_write: 4,
        unify_dispatch: 6,
        trail_check_sw: 4,
        deref_link: 3,
        jump: 12,
        proceed: 12,
        branch_not_taken: 3,
        branch_taken: 6,
        switch_on_term: 10,
        switch_table_probe: 4,
        allocate: 10,
        deallocate: 8,
        choice_point_fixed: 48,
        choice_point_per_reg: 6,
        shallow_save: 2,
        shallow_restore: 6,
        escape_base: 50,
        int_mul: 350,
        int_div: 650,
        fp_op: 50,
        bind: 2,
        trail_push: 8,
        dcache_miss: 6,
        dcache_writeback: 3,
        icache_miss: 0,
    };
    m
}

/// Runs a program/query pair on the software-WAM model.
///
/// # Errors
///
/// Propagates parse, compile and machine errors.
#[deprecated(since = "0.1.0", note = "use `model().run` with `QueryOpts`")]
pub fn run_swam(
    source: &str,
    query: &str,
    enumerate_all: bool,
) -> Result<kcm_cpu::Outcome, KcmError> {
    let opts = QueryOpts {
        enumerate_all,
        ..QueryOpts::default()
    };
    model().run(source, query, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swam_runs_and_answers_correctly() {
        let out = model()
            .run("p(1). p(2).", "p(X)", &QueryOpts::all())
            .unwrap();
        assert_eq!(out.solutions.len(), 2);
        assert!((out.stats.cycle_ns - 40.0).abs() < f64::EPSILON);
    }

    #[test]
    fn deprecated_run_swam_still_works() {
        #[allow(deprecated)]
        let out = run_swam("p(1). p(2).", "p(X)", true).unwrap();
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn swam_is_much_slower_than_kcm() {
        let src = "
            nrev([],[]). nrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).
            app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).
        ";
        let q = "nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20], R)";
        let s = model().run(src, q, &QueryOpts::first()).unwrap();
        let mut kcm = kcm_system::Kcm::new();
        kcm.load(src).unwrap();
        let k = kcm.query(q, &QueryOpts::first()).unwrap();
        let ratio = s.stats.ms() / k.stats.ms();
        assert!(ratio > 3.0, "Quintus-class/KCM ratio {ratio}");
        assert!(ratio < 30.0, "Quintus-class/KCM ratio {ratio}");
    }
}
