//! Randomized property tests of the memory system: whatever the caches
//! and the MMU do for timing, the *values* must match a flat-memory
//! oracle. (Deterministic `kcm-testkit` generators.)

use kcm_arch::{Tag, VAddr, Word, Zone};
use kcm_mem::{MemConfig, MemorySystem};
use kcm_testkit::{cases, TestRng};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, u16, i32),
    Read(u8, u16),
}

fn arb_op(rng: &mut TestRng) -> Op {
    let zone = rng.int_in(0, 5) as u8;
    let off = rng.next_u32() as u16;
    if rng.chance(1, 2) {
        Op::Write(zone, off, rng.next_u32() as i32)
    } else {
        Op::Read(zone, off)
    }
}

fn arb_ops(rng: &mut TestRng, min: usize, max: usize) -> Vec<Op> {
    rng.vec_of(min, max, arb_op)
}

fn addr_of(zone_idx: u8, off: u16) -> VAddr {
    let zone = Zone::DATA_ZONES[zone_idx as usize];
    // Stay inside the default zone limits (1M words).
    VAddr::new(zone.base().value() + (off as u32 % 0xF000))
}

fn run_ops(sectioned: bool, ops: &[Op]) -> Vec<Option<i32>> {
    let mut mem = MemorySystem::new(MemConfig {
        sectioned_data_cache: sectioned,
        ..MemConfig::default()
    });
    let mut oracle: HashMap<u32, i32> = HashMap::new();
    let mut reads = Vec::new();
    for op in ops {
        match op {
            Op::Write(z, o, v) => {
                let a = addr_of(*z, *o);
                mem.write_ptr(Word::ptr(Tag::DataPtr, a), Word::int(*v))
                    .expect("write");
                oracle.insert(a.value(), *v);
            }
            Op::Read(z, o) => {
                let a = addr_of(*z, *o);
                let (w, _) = mem.read_ptr(Word::ptr(Tag::DataPtr, a)).expect("read");
                let got = w.as_int();
                assert_eq!(
                    got,
                    Some(oracle.get(&a.value()).copied().unwrap_or(0)),
                    "cache/oracle divergence at {a} (sectioned={sectioned})"
                );
                reads.push(got);
            }
        }
    }
    reads
}

#[test]
fn sectioned_cache_matches_flat_oracle() {
    cases(64, |rng| {
        run_ops(true, &arb_ops(rng, 1, 300));
    });
}

#[test]
fn unsectioned_cache_matches_flat_oracle() {
    cases(64, |rng| {
        run_ops(false, &arb_ops(rng, 1, 300));
    });
}

#[test]
fn both_geometries_read_identically() {
    cases(64, |rng| {
        let ops = arb_ops(rng, 1, 200);
        let a = run_ops(true, &ops);
        let b = run_ops(false, &ops);
        assert_eq!(a, b);
    });
}

#[test]
fn flush_then_peek_agrees() {
    cases(64, |rng| {
        let ops = arb_ops(rng, 1, 150);
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut oracle: HashMap<u32, i32> = HashMap::new();
        for op in &ops {
            if let Op::Write(z, o, v) = op {
                let a = addr_of(*z, *o);
                mem.write_ptr(Word::ptr(Tag::DataPtr, a), Word::int(*v))
                    .expect("write");
                oracle.insert(a.value(), *v);
            }
        }
        mem.flush_data_cache().expect("flush");
        for (raw, v) in oracle {
            let got = mem.peek(VAddr::new(raw)).expect("peek");
            assert_eq!(got.as_int(), Some(v));
        }
    });
}
