//! The KCM main memory board (paper §3.2.6).
//!
//! "Using SMD technology with components mounted on both sides one such
//! board holds 32 MBytes. [...] The memory is implemented with a 32 bit
//! wide data bus. A fast page mode is used to access two 32 bit words in
//! order to form a 64 bit KCM word."
//!
//! The simulator models the board as 16K-word physical pages allocated on
//! demand (the host workstation acts as paging server, §2.1, so physical
//! pages materialise when the MMU first maps them).

use kcm_arch::{Word, PAGE_SIZE_WORDS};

/// Words on one 32 MByte board: 4M 64-bit words.
pub const BOARD_WORDS: u32 = 32 * 1024 * 1024 / 8;

/// Physical pages on one board.
pub const BOARD_PAGES: u32 = BOARD_WORDS / PAGE_SIZE_WORDS;

/// A physical word address on the memory board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u32);

impl PhysAddr {
    /// Builds a physical address from page number and in-page offset.
    ///
    /// # Panics
    ///
    /// Panics if the page lies beyond the board.
    pub fn new(page: u16, offset: u32) -> PhysAddr {
        assert!((page as u32) < BOARD_PAGES, "physical page beyond board");
        assert!(offset < PAGE_SIZE_WORDS, "offset beyond page");
        PhysAddr((page as u32) * PAGE_SIZE_WORDS + offset)
    }

    /// The raw word address.
    pub fn value(self) -> u32 {
        self.0
    }
}

/// The physical memory board: demand-allocated 16K-word pages.
///
/// # Examples
///
/// ```
/// use kcm_mem::main_memory::{MainMemory, PhysAddr};
/// use kcm_arch::Word;
///
/// let mut m = MainMemory::new();
/// let page = m.allocate_page().unwrap();
/// let a = PhysAddr::new(page, 7);
/// m.write(a, Word::int(3));
/// assert_eq!(m.read(a).as_int(), Some(3));
/// ```
#[derive(Debug)]
pub struct MainMemory {
    pages: Vec<Option<Box<[u64]>>>,
    next_free: u16,
    allocated: u32,
}

impl Default for MainMemory {
    fn default() -> MainMemory {
        MainMemory::new()
    }
}

impl MainMemory {
    /// An empty board: no physical page allocated yet.
    pub fn new() -> MainMemory {
        MainMemory {
            pages: (0..BOARD_PAGES).map(|_| None).collect(),
            next_free: 0,
            allocated: 0,
        }
    }

    /// Allocates the next free physical page, zero-filled. Returns `None`
    /// when the board is full.
    pub fn allocate_page(&mut self) -> Option<u16> {
        if (self.next_free as u32) >= BOARD_PAGES {
            return None;
        }
        let page = self.next_free;
        self.pages[page as usize] =
            Some(vec![Word::ZERO.bits(); PAGE_SIZE_WORDS as usize].into_boxed_slice());
        self.next_free += 1;
        self.allocated += 1;
        Some(page)
    }

    /// Number of physical pages currently allocated.
    pub fn allocated_pages(&self) -> u32 {
        self.allocated
    }

    /// Reads a word. Unallocated memory reads as the zero pattern — on the
    /// real board this is whatever the DRAM held; the simulator defines it
    /// for reproducibility.
    #[inline]
    pub fn read(&self, addr: PhysAddr) -> Word {
        let page = (addr.value() / PAGE_SIZE_WORDS) as usize;
        let offset = (addr.value() % PAGE_SIZE_WORDS) as usize;
        match &self.pages[page] {
            Some(p) => Word::from_bits(p[offset]),
            None => Word::ZERO,
        }
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics when writing to a page the MMU never allocated — the MMU is
    /// the only component that hands out physical addresses, so this
    /// indicates a simulator bug, not a guest error.
    #[inline]
    pub fn write(&mut self, addr: PhysAddr, value: Word) {
        let page = (addr.value() / PAGE_SIZE_WORDS) as usize;
        let offset = (addr.value() % PAGE_SIZE_WORDS) as usize;
        let p = self.pages[page]
            .as_mut()
            .expect("write to unallocated physical page");
        p[offset] = value.bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_geometry_matches_paper() {
        // 32 MBytes of 64-bit words, 16K-word pages.
        assert_eq!(BOARD_WORDS, 4 * 1024 * 1024);
        assert_eq!(BOARD_PAGES, 256);
    }

    #[test]
    fn pages_allocate_sequentially() {
        let mut m = MainMemory::new();
        assert_eq!(m.allocate_page(), Some(0));
        assert_eq!(m.allocate_page(), Some(1));
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn board_exhausts() {
        let mut m = MainMemory::new();
        for _ in 0..BOARD_PAGES {
            assert!(m.allocate_page().is_some());
        }
        assert_eq!(m.allocate_page(), None);
    }

    #[test]
    fn fresh_pages_read_zero() {
        let mut m = MainMemory::new();
        let page = m.allocate_page().unwrap();
        assert_eq!(m.read(PhysAddr::new(page, 0)), Word::ZERO);
    }

    #[test]
    fn unallocated_reads_zero_pattern() {
        let m = MainMemory::new();
        assert_eq!(m.read(PhysAddr::new(10, 5)), Word::ZERO);
    }

    #[test]
    #[should_panic(expected = "unallocated physical page")]
    fn write_to_unallocated_page_panics() {
        let mut m = MainMemory::new();
        m.write(PhysAddr::new(3, 0), Word::int(1));
    }

    #[test]
    fn writes_are_page_local() {
        let mut m = MainMemory::new();
        let p0 = m.allocate_page().unwrap();
        let p1 = m.allocate_page().unwrap();
        m.write(PhysAddr::new(p0, 9), Word::int(1));
        m.write(PhysAddr::new(p1, 9), Word::int(2));
        assert_eq!(m.read(PhysAddr::new(p0, 9)).as_int(), Some(1));
        assert_eq!(m.read(PhysAddr::new(p1, 9)).as_int(), Some(2));
    }
}
