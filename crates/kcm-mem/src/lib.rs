//! The KCM memory system (paper §2.4 and §3.2).
//!
//! KCM has "two separate access paths to memory, one for code and one for
//! data. There are two independent caches, but the physical memory is
//! shared." Both caches are *logical* (virtually addressed) — affordable
//! because KCM is a single-task back-end processor that never context
//! switches. Address translation uses a RAM-resident page table instead of
//! a TLB for the same reason.
//!
//! The pieces, each in its own module:
//!
//! * [`main_memory`] — the 32 MByte memory board (§3.2.6) with page-mode
//!   access pairing 32-bit halves into 64-bit words.
//! * [`page_table`] — the address translation RAM: 16K entries per address
//!   space, 16K-word pages, 11-bit physical page numbers (§3.2.5), with
//!   allocate-on-fault backed by the host "paging server".
//! * [`zone_check`] — access-right verification on *virtual* addresses
//!   (§3.2.3): per-zone limit registers, admitted-type masks, write
//!   protection.
//! * [`data_cache`] — the direct-mapped store-in data cache, split into
//!   eight 1K-word sections selected by the zone field (§3.2.4).
//! * [`code_cache`] — the 8K-word write-through code cache with page-mode
//!   prefetch (§3.2.4).
//!
//! [`MemorySystem`] wires them together behind the interface the execution
//! unit uses: tagged-pointer reads and writes that return the *extra* cycle
//! penalty beyond the 1-cycle (80 ns) cache access.
//!
//! # Examples
//!
//! ```
//! use kcm_mem::{MemorySystem, MemConfig};
//! use kcm_arch::{Word, Tag, VAddr, Zone};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let cell = VAddr::new(Zone::Global.base().value() + 5);
//! let ptr = Word::ptr(Tag::Ref, cell);
//! mem.write_ptr(ptr, Word::int(11)).unwrap();
//! let (w, _extra) = mem.read_ptr(ptr).unwrap();
//! assert_eq!(w.as_int(), Some(11));
//! ```

#![warn(missing_docs)]

pub mod code_cache;
pub mod data_cache;
pub mod main_memory;
pub mod page_table;
pub mod zone_check;

pub use code_cache::CodeCache;
pub use data_cache::DataCache;
pub use main_memory::MainMemory;
pub use page_table::{Mmu, Space};
pub use zone_check::{ZoneFault, ZoneTable};

use kcm_arch::timing::Cycles;
use kcm_arch::{CodeAddr, Tag, VAddr, Word, Zone};

/// Configuration of the memory system.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Whether the data cache is split into eight zone-selected sections
    /// (§3.2.4). Disabling reproduces the plain direct-mapped cache of the
    /// paper's internal collision experiment.
    pub sectioned_data_cache: bool,
    /// Whether the zone check is active. Disabling it models running with
    /// protection off (used by ablation benches; real code keeps it on).
    pub zone_check: bool,
    /// Data cache miss penalty in cycles.
    pub dcache_miss: Cycles,
    /// Additional penalty when the evicted line is dirty.
    pub dcache_writeback: Cycles,
    /// Code cache miss penalty in cycles.
    pub icache_miss: Cycles,
    /// Host-side fast paths (MMU TLB, data-cache last-line cache). Purely
    /// a *host* speed switch: the simulated counters and cycle charges are
    /// byte-identical either way (asserted by `kcm-suite/tests/fastpath.rs`).
    /// Off keeps the naive reference paths for differential testing.
    pub fast_paths: bool,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        let costs = kcm_arch::CostModel::default();
        MemConfig {
            sectioned_data_cache: true,
            zone_check: true,
            dcache_miss: costs.dcache_miss,
            dcache_writeback: costs.dcache_writeback,
            icache_miss: costs.icache_miss,
            fast_paths: true,
        }
    }
}

/// A fault raised by the memory system. On the real machine these trap to
/// the monitor; the simulator surfaces them as errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// The zone check rejected the access (§3.2.3).
    Zone(ZoneFault),
    /// The operand used as an address is not a pointer type — the data
    /// cache's dereference hardware aborts such reads (§3.1.4), but an
    /// explicit load/store through a non-pointer is a programming error.
    NotAnAddress(Word),
    /// Physical memory exhausted (the 32 MByte board is full).
    OutOfPhysicalMemory,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::Zone(z) => write!(f, "zone check fault: {z}"),
            MemFault::NotAnAddress(w) => write!(f, "word used as address is not a pointer: {w}"),
            MemFault::OutOfPhysicalMemory => write!(f, "out of physical memory"),
        }
    }
}

impl std::error::Error for MemFault {}

impl From<ZoneFault> for MemFault {
    fn from(z: ZoneFault) -> MemFault {
        MemFault::Zone(z)
    }
}

/// Aggregate statistics of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data cache hits.
    pub dcache_hits: u64,
    /// Data cache misses.
    pub dcache_misses: u64,
    /// Dirty lines written back on eviction.
    pub dcache_writebacks: u64,
    /// Code cache hits.
    pub icache_hits: u64,
    /// Code cache misses.
    pub icache_misses: u64,
    /// Data-space page faults serviced (physical page allocated).
    pub data_page_faults: u64,
    /// Code-space page faults serviced.
    pub code_page_faults: u64,
}

impl MemStats {
    /// Data cache hit ratio in [0, 1]; 1.0 for an untouched cache.
    pub fn dcache_hit_ratio(&self) -> f64 {
        let total = self.dcache_hits + self.dcache_misses;
        if total == 0 {
            1.0
        } else {
            self.dcache_hits as f64 / total as f64
        }
    }

    /// Code cache hit ratio in [0, 1]; 1.0 for an untouched cache.
    pub fn icache_hit_ratio(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            1.0
        } else {
            self.icache_hits as f64 / total as f64
        }
    }

    /// Adds another memory system's counters into this aggregate
    /// (multi-session totals).
    pub fn merge(&mut self, other: &MemStats) {
        self.dcache_hits += other.dcache_hits;
        self.dcache_misses += other.dcache_misses;
        self.dcache_writebacks += other.dcache_writebacks;
        self.icache_hits += other.icache_hits;
        self.icache_misses += other.icache_misses;
        self.data_page_faults += other.data_page_faults;
        self.code_page_faults += other.code_page_faults;
    }

    /// The counters accumulated since `earlier` was captured — the inverse
    /// of [`MemStats::merge`]. `earlier` must be a previous snapshot of the
    /// same memory system (counters only grow), so plain subtraction is
    /// exact.
    #[must_use]
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            dcache_hits: self.dcache_hits - earlier.dcache_hits,
            dcache_misses: self.dcache_misses - earlier.dcache_misses,
            dcache_writebacks: self.dcache_writebacks - earlier.dcache_writebacks,
            icache_hits: self.icache_hits - earlier.icache_hits,
            icache_misses: self.icache_misses - earlier.icache_misses,
            data_page_faults: self.data_page_faults - earlier.data_page_faults,
            code_page_faults: self.code_page_faults - earlier.code_page_faults,
        }
    }
}

/// A data-memory backend the execution unit can run against.
///
/// The KCM interpreter core is generic over this trait so that the same
/// instruction semantics drive two tiers: the cycle-accurate
/// [`MemorySystem`] (caches, MMU, paging, per-access penalties) and the
/// native tier's flat uncosted store (`kcm-native`). Everything the
/// machine observes architecturally — word values, zone faults, zone
/// limits, write protection — must behave identically across backends;
/// only the *timing* (the returned extra-cycle penalties, the cache/MMU
/// statistics) may differ.
pub trait DataMem: std::fmt::Debug + Send {
    /// Whether this backend models the memory hierarchy. When `false` the
    /// machine statically skips all cycle accounting, prefetch modelling
    /// and per-instruction profile bookkeeping — the branch is resolved at
    /// monomorphization time, so the native tier pays nothing for it.
    const SIMULATED: bool;

    /// Creates a backend from the memory configuration. Backends that do
    /// not model the hierarchy may ignore most fields but must honor
    /// `zone_check`.
    fn with_config(config: MemConfig) -> Self;

    /// The zone table (limits may be changed dynamically, §3.2.3).
    fn zones(&self) -> &ZoneTable;

    /// Mutable access to the zone table.
    fn zones_mut(&mut self) -> &mut ZoneTable;

    /// Reads the data word addressed by the tagged pointer `ptr`,
    /// returning the word and the extra cycle penalty.
    ///
    /// # Errors
    ///
    /// [`MemFault::NotAnAddress`] for a non-pointer, zone faults per the
    /// zone rules.
    fn read_ptr(&mut self, ptr: Word) -> Result<(Word, Cycles), MemFault>;

    /// Writes `value` through the tagged pointer `ptr`, returning the
    /// extra cycle penalty.
    ///
    /// # Errors
    ///
    /// [`MemFault::NotAnAddress`] or a zone fault, including write
    /// protection.
    fn write_ptr(&mut self, ptr: Word, value: Word) -> Result<Cycles, MemFault>;

    /// Reads the data word at `addr` as the machine's data path does: a
    /// [`Tag::DataPtr`]-tagged access subject to the zone rules. The
    /// default forwards to [`DataMem::read_ptr`] with the packed pointer
    /// the machine would have built; backends with a cheaper way to reach
    /// the same observable behaviour (same words, same faults) may
    /// override it.
    ///
    /// # Errors
    ///
    /// Exactly those of `read_ptr` on the packed pointer.
    #[inline]
    fn read_data_addr(&mut self, addr: VAddr) -> Result<(Word, Cycles), MemFault> {
        self.read_ptr(Word::ptr(Tag::DataPtr, addr))
    }

    /// Writes `value` at `addr` as the machine's data path does (a
    /// [`Tag::DataPtr`]-tagged access). Same contract as
    /// [`DataMem::read_data_addr`].
    ///
    /// # Errors
    ///
    /// Exactly those of `write_ptr` on the packed pointer.
    #[inline]
    fn write_data_addr(&mut self, addr: VAddr, value: Word) -> Result<Cycles, MemFault> {
        self.write_ptr(Word::ptr(Tag::DataPtr, addr), value)
    }

    /// Host back-door read bypassing timing and zone checks.
    ///
    /// # Errors
    ///
    /// Backend-specific allocation failure.
    fn peek(&mut self, addr: VAddr) -> Result<Word, MemFault>;

    /// Host back-door write bypassing timing and zone checks.
    ///
    /// # Errors
    ///
    /// Backend-specific allocation failure.
    fn poke(&mut self, addr: VAddr, value: Word) -> Result<(), MemFault>;

    /// Times an instruction fetch; untimed backends return 0.
    fn fetch_code(&mut self, addr: CodeAddr) -> Cycles {
        let _ = addr;
        0
    }

    /// Times a sequential multi-word instruction fetch; untimed backends
    /// return 0.
    fn fetch_code_seq(&mut self, addr: CodeAddr, words: usize) -> Cycles {
        let _ = (addr, words);
        0
    }

    /// Invalidates the code cache (no-op without one).
    fn invalidate_code_cache(&mut self) {}

    /// Cache/MMU statistics; untimed backends report all-zero counters.
    fn stats(&self) -> MemStats {
        MemStats::default()
    }
}

impl DataMem for MemorySystem {
    const SIMULATED: bool = true;

    fn with_config(config: MemConfig) -> MemorySystem {
        MemorySystem::new(config)
    }

    fn zones(&self) -> &ZoneTable {
        MemorySystem::zones(self)
    }

    fn zones_mut(&mut self) -> &mut ZoneTable {
        MemorySystem::zones_mut(self)
    }

    #[inline]
    fn read_ptr(&mut self, ptr: Word) -> Result<(Word, Cycles), MemFault> {
        MemorySystem::read_ptr(self, ptr)
    }

    #[inline]
    fn write_ptr(&mut self, ptr: Word, value: Word) -> Result<Cycles, MemFault> {
        MemorySystem::write_ptr(self, ptr, value)
    }

    fn peek(&mut self, addr: VAddr) -> Result<Word, MemFault> {
        MemorySystem::peek(self, addr)
    }

    fn poke(&mut self, addr: VAddr, value: Word) -> Result<(), MemFault> {
        MemorySystem::poke(self, addr, value)
    }

    #[inline]
    fn fetch_code(&mut self, addr: CodeAddr) -> Cycles {
        MemorySystem::fetch_code(self, addr)
    }

    #[inline]
    fn fetch_code_seq(&mut self, addr: CodeAddr, words: usize) -> Cycles {
        MemorySystem::fetch_code_seq(self, addr, words)
    }

    fn invalidate_code_cache(&mut self) {
        MemorySystem::invalidate_code_cache(self)
    }

    fn stats(&self) -> MemStats {
        MemorySystem::stats(self)
    }
}

/// The complete KCM memory system: caches in front of the MMU in front of
/// the memory board, with the zone checker alongside (figure 4: "the memory
/// management is in between the caches and the main memory, not in between
/// the CPU and the caches, i.e. logical caches are used").
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    memory: MainMemory,
    mmu: Mmu,
    zones: ZoneTable,
    dcache: DataCache,
    icache: CodeCache,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system with empty caches and an unmapped page
    /// table.
    pub fn new(config: MemConfig) -> MemorySystem {
        let mut dcache = DataCache::new(config.sectioned_data_cache);
        dcache.set_fast_paths(config.fast_paths);
        let mut mmu = Mmu::new();
        mmu.set_fast_paths(config.fast_paths);
        MemorySystem {
            dcache,
            icache: CodeCache::new(),
            config,
            memory: MainMemory::new(),
            mmu,
            zones: ZoneTable::new(),
            stats: MemStats::default(),
        }
    }

    /// The zone table (limits may be changed dynamically, §3.2.3).
    pub fn zones(&self) -> &ZoneTable {
        &self.zones
    }

    /// Mutable access to the zone table.
    pub fn zones_mut(&mut self) -> &mut ZoneTable {
        &mut self.zones
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Reads the data word addressed by the tagged pointer `ptr`,
    /// returning the word and the extra cycle penalty (0 on a cache hit).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::NotAnAddress`] if `ptr` is not a pointer type
    /// and a zone fault if the access violates the zone rules.
    #[inline]
    pub fn read_ptr(&mut self, ptr: Word) -> Result<(Word, Cycles), MemFault> {
        let addr = ptr.as_addr().ok_or(MemFault::NotAnAddress(ptr))?;
        if self.config.zone_check {
            self.zones.check_read(ptr)?;
        }
        self.read_checked(addr)
    }

    /// Writes `value` through the tagged pointer `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::NotAnAddress`] or a zone fault — in particular
    /// a write-protection fault on a protected zone: "Without protection on
    /// the level of the logical caches the data will simply be stored in
    /// the cache" (§3.2.3) — KCM checks before the cache absorbs the write.
    #[inline]
    pub fn write_ptr(&mut self, ptr: Word, value: Word) -> Result<Cycles, MemFault> {
        let addr = ptr.as_addr().ok_or(MemFault::NotAnAddress(ptr))?;
        if self.config.zone_check {
            self.zones.check_write(ptr)?;
        }
        self.write_checked(addr, value)
    }

    /// The dereference assist of the data cache (§3.1.4): if `w` is a
    /// pointer the cache performs the read; if not, it aborts and returns
    /// `None` — "random data used as an address may cause a cache-miss and
    /// even a page fault which certainly is not tolerable".
    pub fn deref_assist(&mut self, w: Word) -> Option<Result<(Word, Cycles), MemFault>> {
        if w.tag_checked().is_some_and(Tag::is_pointer) {
            Some(self.read_ptr(w))
        } else {
            None
        }
    }

    #[inline]
    fn read_checked(&mut self, addr: VAddr) -> Result<(Word, Cycles), MemFault> {
        let (word, extra) = self.dcache.read(
            addr,
            &mut self.memory,
            &mut self.mmu,
            &self.config,
            &mut self.stats,
        )?;
        Ok((word, extra))
    }

    #[inline]
    fn write_checked(&mut self, addr: VAddr, value: Word) -> Result<Cycles, MemFault> {
        self.dcache.write(
            addr,
            value,
            &mut self.memory,
            &mut self.mmu,
            &self.config,
            &mut self.stats,
        )
    }

    /// Times an instruction fetch from `addr` in the code space, returning
    /// the extra penalty (0 on a code cache hit). The paper's write-through
    /// code cache prefetches "a few words ahead when a miss occurs"; the
    /// model fills the missed word plus the next.
    #[inline]
    pub fn fetch_code(&mut self, addr: CodeAddr) -> Cycles {
        self.icache
            .fetch(addr, &mut self.mmu, &self.config, &mut self.stats)
    }

    /// Times the fetch of `words` sequential code words starting at
    /// `addr` — one instruction's worth — in a single call. Counter-exact
    /// equivalent of `words` individual [`MemorySystem::fetch_code`]
    /// calls; the returned penalty is their sum.
    #[inline]
    pub fn fetch_code_seq(&mut self, addr: CodeAddr, words: usize) -> Cycles {
        self.icache
            .fetch_seq(addr, words, &mut self.mmu, &self.config, &mut self.stats)
    }

    /// Invalidates the code cache — used when compiled code is moved from
    /// the data space into the code space (§3.2.1: the memory management
    /// "can invalidate the virtual data page and attach the physical page
    /// to the code space").
    pub fn invalidate_code_cache(&mut self) {
        self.icache.invalidate();
    }

    /// Writes back all dirty data cache lines (used before the host reads
    /// simulated memory directly).
    ///
    /// # Errors
    ///
    /// Propagates page-allocation failure.
    pub fn flush_data_cache(&mut self) -> Result<(), MemFault> {
        self.dcache
            .flush(&mut self.memory, &mut self.mmu, &mut self.stats)
    }

    /// Host back-door read bypassing timing and checks. Reads through the
    /// cache's current contents, so no flush is needed.
    ///
    /// # Errors
    ///
    /// Propagates page-allocation failure.
    pub fn peek(&mut self, addr: VAddr) -> Result<Word, MemFault> {
        if let Some(w) = self.dcache.peek(addr) {
            return Ok(w);
        }
        let phys = self
            .mmu
            .translate_data(addr, &mut self.memory, &mut self.stats)?;
        Ok(self.memory.read(phys))
    }

    /// Host back-door write bypassing timing (still keeps the cache
    /// coherent by updating a present line in place).
    ///
    /// # Errors
    ///
    /// Propagates page-allocation failure.
    pub fn poke(&mut self, addr: VAddr, value: Word) -> Result<(), MemFault> {
        let phys = self
            .mmu
            .translate_data(addr, &mut self.memory, &mut self.stats)?;
        self.memory.write(phys, value);
        self.dcache.update_if_present(addr, value);
        Ok(())
    }

    /// Initial stack base for a zone: when `spread` is set the bases are
    /// offset by distinct multiples of 1K words so they map to different
    /// cells even in an unsectioned direct-mapped cache — the two
    /// initialisations of the paper's §3.2.4 experiment.
    pub fn stack_base(zone: Zone, spread: bool) -> VAddr {
        let offset = if spread {
            (zone.bits() as u32) * 1024
        } else {
            0
        };
        VAddr::new(zone.base().value() + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaddr(off: u32) -> VAddr {
        VAddr::new(Zone::Global.base().value() + off)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let ptr = Word::ptr(Tag::Ref, gaddr(100));
        mem.write_ptr(ptr, Word::int(7)).unwrap();
        let (w, _) = mem.read_ptr(ptr).unwrap();
        assert_eq!(w.as_int(), Some(7));
    }

    #[test]
    fn non_pointer_address_faults() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let err = mem.read_ptr(Word::int(123)).unwrap_err();
        assert!(matches!(err, MemFault::NotAnAddress(_)));
    }

    #[test]
    fn deref_assist_aborts_on_non_pointers() {
        // §3.1.4: a float used as an address must not cause a cache miss.
        let mut mem = MemorySystem::new(MemConfig::default());
        assert!(mem.deref_assist(Word::float(3.25)).is_none());
        let before = mem.stats();
        assert_eq!(before.dcache_misses, 0);
        let ptr = Word::ptr(Tag::Ref, gaddr(0));
        mem.write_ptr(ptr, Word::int(1)).unwrap();
        assert!(mem.deref_assist(ptr).is_some());
    }

    #[test]
    fn first_touch_allocates_a_page() {
        let mut mem = MemorySystem::new(MemConfig::default());
        assert_eq!(mem.stats().data_page_faults, 0);
        mem.write_ptr(Word::ptr(Tag::Ref, gaddr(0)), Word::int(1))
            .unwrap();
        assert_eq!(mem.stats().data_page_faults, 1);
        // Same page: no new fault.
        mem.write_ptr(Word::ptr(Tag::Ref, gaddr(1)), Word::int(2))
            .unwrap();
        assert_eq!(mem.stats().data_page_faults, 1);
    }

    #[test]
    fn peek_sees_unflushed_writes() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let a = gaddr(4);
        mem.write_ptr(Word::ptr(Tag::Ref, a), Word::int(99))
            .unwrap();
        // Store-in cache: main memory may be stale, but peek must see the
        // cached value.
        assert_eq!(mem.peek(a).unwrap().as_int(), Some(99));
    }

    #[test]
    fn stack_bases_spread_or_collide() {
        let aligned_g = MemorySystem::stack_base(Zone::Global, false);
        let aligned_l = MemorySystem::stack_base(Zone::Local, false);
        // Aligned bases collide modulo the 8K cache size.
        assert_eq!(aligned_g.value() % 8192, aligned_l.value() % 8192);
        let spread_g = MemorySystem::stack_base(Zone::Global, true);
        let spread_l = MemorySystem::stack_base(Zone::Local, true);
        assert_ne!(spread_g.value() % 8192, spread_l.value() % 8192);
    }

    #[test]
    fn code_fetch_misses_then_hits() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let a = CodeAddr::new(0x40);
        let miss = mem.fetch_code(a);
        assert!(miss > 0);
        let hit = mem.fetch_code(a);
        assert_eq!(hit, 0);
        assert_eq!(mem.stats().icache_misses, 1);
        assert_eq!(mem.stats().icache_hits, 1);
    }

    #[test]
    fn code_prefetch_covers_next_word() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let a = CodeAddr::new(0x80);
        mem.fetch_code(a);
        // Page-mode prefetch fetched a few words ahead: the sequentially
        // next word hits.
        assert_eq!(mem.fetch_code(a.offset(1)), 0);
    }

    #[test]
    fn invalidate_code_cache_forces_miss() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let a = CodeAddr::new(0x10);
        mem.fetch_code(a);
        assert_eq!(mem.fetch_code(a), 0);
        mem.invalidate_code_cache();
        assert!(mem.fetch_code(a) > 0);
    }
}
