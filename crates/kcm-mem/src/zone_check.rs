//! Check of access rights at the logical level (paper §3.2.3).
//!
//! The zone check works on *virtual* addresses, in front of the logical
//! data cache, for three reasons the paper spells out: monitoring stack
//! sizes (overflow detection, GC triggering), security/debugging support
//! (type-restricted addresses), and catching bad writes before the
//! store-in cache absorbs them.

use kcm_arch::zone::ZONE_GRANULARITY_WORDS;
use kcm_arch::{Tag, VAddr, Word, Zone, ZoneLimits};

/// A fault detected by the zone checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneFault {
    /// The four most significant (unimplemented) address bits were not
    /// zero.
    HighBitsSet(Word),
    /// The address lies outside the zone's current limits — a stack
    /// overflow/underflow or collision (the trap that lets the system
    /// trigger garbage collection or grow a zone).
    OutOfZone {
        /// The zone named by the address word.
        zone: Zone,
        /// The offending address.
        addr: VAddr,
    },
    /// The word's type may not be used as an address into that zone (e.g.
    /// "the result of a floating point operation to address a memory
    /// cell").
    TypeNotAdmitted {
        /// The zone named by the address word.
        zone: Zone,
        /// The offending type.
        tag: Tag,
    },
    /// Write to a write-protected zone.
    WriteProtected(Zone),
    /// The address word carries a zone number with no configured zone.
    UnknownZone(Word),
}

impl std::fmt::Display for ZoneFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneFault::HighBitsSet(w) => write!(f, "unimplemented address bits set in {w}"),
            ZoneFault::OutOfZone { zone, addr } => {
                write!(f, "address {addr} outside limits of zone {zone}")
            }
            ZoneFault::TypeNotAdmitted { zone, tag } => {
                write!(f, "type {tag} not admitted as address into zone {zone}")
            }
            ZoneFault::WriteProtected(z) => write!(f, "write to protected zone {z}"),
            ZoneFault::UnknownZone(w) => write!(f, "no zone configured for {w}"),
        }
    }
}

impl std::error::Error for ZoneFault {}

/// The per-zone limit RAM plus admitted-type logic.
///
/// # Examples
///
/// ```
/// use kcm_mem::ZoneTable;
/// use kcm_arch::{Word, Tag, VAddr, Zone};
///
/// let zones = ZoneTable::new();
/// let ok = Word::ptr(Tag::Ref, Zone::Global.base());
/// assert!(zones.check_read(ok).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ZoneTable {
    limits: [ZoneLimits; 5],
    traps: u64,
}

impl Default for ZoneTable {
    fn default() -> ZoneTable {
        ZoneTable::new()
    }
}

/// Default size of each zone at reset: 1M words (grown on demand by the
/// trap handler, exactly how the paper's adaptive paging strategy works).
pub const DEFAULT_ZONE_WORDS: u32 = 1 << 20;

impl ZoneTable {
    /// Creates a table with every data zone spanning its default extent.
    pub fn new() -> ZoneTable {
        let lim =
            |z: Zone| ZoneLimits::new(z.base(), VAddr::new(z.base().value() + DEFAULT_ZONE_WORDS));
        ZoneTable {
            limits: [
                lim(Zone::Static),
                lim(Zone::Global),
                lim(Zone::Local),
                lim(Zone::Control),
                lim(Zone::Trail),
            ],
            traps: 0,
        }
    }

    /// Current limits of a data zone.
    ///
    /// # Panics
    ///
    /// Panics if `zone` is [`Zone::Code`] (code is not a data zone).
    pub fn limits(&self, zone: Zone) -> ZoneLimits {
        assert!(zone != Zone::Code, "code space has no data zone limits");
        self.limits[zone.bits() as usize]
    }

    /// Replaces a zone's limits ("the limits of the zones may be changed
    /// dynamically").
    ///
    /// # Panics
    ///
    /// Panics if `zone` is [`Zone::Code`].
    pub fn set_limits(&mut self, zone: Zone, limits: ZoneLimits) {
        assert!(zone != Zone::Code, "code space has no data zone limits");
        self.limits[zone.bits() as usize] = limits;
    }

    /// Number of faults this table has reported (traps taken).
    pub fn trap_count(&self) -> u64 {
        self.traps
    }

    fn check_common(&self, ptr: Word) -> Result<(Zone, VAddr), ZoneFault> {
        // "It verifies that the most significant 4 address bits not used in
        // the current implementation are zero."
        if ptr.value() & 0xF000_0000 != 0 {
            return Err(ZoneFault::HighBitsSet(ptr));
        }
        let addr = VAddr::new(ptr.value());
        let zone = match ptr.zone() {
            Zone::Code => return Err(ZoneFault::UnknownZone(ptr)),
            z => z,
        };
        let tag = ptr.tag();
        if !zone.admits(tag) {
            return Err(ZoneFault::TypeNotAdmitted { zone, tag });
        }
        let limits = self.limits[zone.bits() as usize];
        if !limits.contains(addr) {
            return Err(ZoneFault::OutOfZone { zone, addr });
        }
        Ok((zone, addr))
    }

    /// Checks a read access through the tagged pointer `ptr`.
    ///
    /// # Errors
    ///
    /// Any [`ZoneFault`] other than [`ZoneFault::WriteProtected`].
    pub fn check_read(&self, ptr: Word) -> Result<(), ZoneFault> {
        self.check_common(ptr).map(|_| ())
    }

    /// Checks a write access through the tagged pointer `ptr`.
    ///
    /// # Errors
    ///
    /// Any [`ZoneFault`], including write protection.
    pub fn check_write(&self, ptr: Word) -> Result<(), ZoneFault> {
        let (zone, _) = self.check_common(ptr)?;
        if self.limits[zone.bits() as usize].is_write_protected() {
            return Err(ZoneFault::WriteProtected(zone));
        }
        Ok(())
    }

    /// Records that a trap was delivered for bookkeeping (the machine
    /// calls this when it surfaces a fault).
    pub fn record_trap(&mut self) {
        self.traps += 1;
    }

    /// Convenience used by the stack-overflow machinery: distance in words
    /// from `addr` to its zone's end, if the address is inside a zone.
    pub fn headroom(&self, addr: VAddr) -> Option<u32> {
        let zone = Zone::of_addr(addr)?;
        if zone == Zone::Code {
            return None;
        }
        let limits = self.limits[zone.bits() as usize];
        let end_block =
            limits.end().value().div_ceil(ZONE_GRANULARITY_WORDS) * ZONE_GRANULARITY_WORDS;
        end_block.checked_sub(addr.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gptr(off: u32) -> Word {
        Word::ptr(Tag::Ref, VAddr::new(Zone::Global.base().value() + off))
    }

    #[test]
    fn in_zone_reference_passes() {
        let t = ZoneTable::new();
        assert!(t.check_read(gptr(0)).is_ok());
        assert!(t.check_write(gptr(100)).is_ok());
    }

    #[test]
    fn out_of_zone_traps() {
        let t = ZoneTable::new();
        let beyond = gptr(DEFAULT_ZONE_WORDS + ZONE_GRANULARITY_WORDS);
        assert!(matches!(
            t.check_read(beyond),
            Err(ZoneFault::OutOfZone {
                zone: Zone::Global,
                ..
            })
        ));
    }

    #[test]
    fn list_pointer_into_local_stack_traps() {
        // "On the local stack, however, only reference and data pointer are
        // allowed, since lists and structures are not constructed there."
        let t = ZoneTable::new();
        let w = Word::pack(Tag::List, Zone::Local, Zone::Local.base().value());
        assert!(matches!(
            t.check_read(w),
            Err(ZoneFault::TypeNotAdmitted {
                zone: Zone::Local,
                tag: Tag::List
            })
        ));
    }

    #[test]
    fn reference_into_control_stack_traps() {
        let t = ZoneTable::new();
        let w = Word::pack(Tag::Ref, Zone::Control, Zone::Control.base().value());
        assert!(t.check_read(w).is_err());
        let ok = Word::pack(Tag::DataPtr, Zone::Control, Zone::Control.base().value());
        assert!(t.check_read(ok).is_ok());
    }

    #[test]
    fn write_protection_blocks_writes_only() {
        let mut t = ZoneTable::new();
        let lim = t.limits(Zone::Static).write_protected();
        t.set_limits(Zone::Static, lim);
        let w = Word::pack(Tag::DataPtr, Zone::Static, Zone::Static.base().value());
        assert!(t.check_read(w).is_ok());
        assert!(matches!(
            t.check_write(w),
            Err(ZoneFault::WriteProtected(Zone::Static))
        ));
    }

    #[test]
    fn high_bits_detected() {
        let t = ZoneTable::new();
        let bad = Word::pack(
            Tag::Ref,
            Zone::Global,
            0x1000_0000 | Zone::Global.base().value(),
        );
        assert!(matches!(t.check_read(bad), Err(ZoneFault::HighBitsSet(_))));
    }

    #[test]
    fn growing_a_zone_clears_the_trap() {
        let mut t = ZoneTable::new();
        let addr = VAddr::new(Zone::Trail.base().value() + DEFAULT_ZONE_WORDS + 8192);
        let w = Word::pack(Tag::DataPtr, Zone::Trail, addr.value());
        assert!(t.check_write(w).is_err());
        t.set_limits(
            Zone::Trail,
            ZoneLimits::new(
                Zone::Trail.base(),
                addr.offset(ZONE_GRANULARITY_WORDS as i64),
            ),
        );
        assert!(t.check_write(w).is_ok());
    }

    #[test]
    fn headroom_shrinks_as_stack_grows() {
        let t = ZoneTable::new();
        let base = Zone::Local.base();
        let h0 = t.headroom(base).unwrap();
        let h1 = t.headroom(base.offset(1000)).unwrap();
        assert_eq!(h0 - h1, 1000);
    }
}
