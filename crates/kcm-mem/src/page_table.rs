//! Address translation (paper §3.2.5).
//!
//! "The address translation hardware is designed for speed and simplicity,
//! i.e. a simple RAM is used to hold the entire page table rather than
//! storing the page table in main memory and use an associative cache. [...]
//! The address translation is done using a RAM organised as 32K x 16 bit.
//! It contains one entry for each virtual page (16K virtual pages for code
//! and data each). Each entry consists of 5 status bits plus 11 bits
//! physical page number."

use crate::main_memory::{MainMemory, PhysAddr};
use crate::{MemFault, MemStats};
use kcm_arch::{CodeAddr, VAddr, PAGE_SIZE_WORDS};

/// Which of the two virtual address spaces an access targets (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// The data space.
    Data,
    /// The code space.
    Code,
}

/// One 16-bit page table entry: 11-bit physical page number + status bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry(u16);

const ST_VALID: u16 = 1 << 11;
const ST_DIRTY: u16 = 1 << 12;
const ST_REFERENCED: u16 = 1 << 13;

impl Entry {
    fn valid(self) -> bool {
        self.0 & ST_VALID != 0
    }

    fn phys_page(self) -> u16 {
        self.0 & 0x7FF
    }

    fn map(page: u16) -> Entry {
        Entry((page & 0x7FF) | ST_VALID)
    }
}

/// One host-side TLB slot: a virtual data page whose table entry is known
/// valid and referenced, with its physical page. `vp == u32::MAX` marks an
/// empty slot (no virtual page has that index).
#[derive(Debug, Clone, Copy)]
struct TlbSlot {
    vp: u32,
    page: u16,
}

const TLB_EMPTY: TlbSlot = TlbSlot {
    vp: u32::MAX,
    page: 0,
};

/// Direct-mapped host TLB size (power of two).
const TLB_SLOTS: usize = 64;

/// The translation RAM: the full page table for both spaces, held in the
/// machine (no TLB — "this design works because KCM is a single-task
/// machine that does not need to do context switches").
///
/// The *simulated* machine has no TLB, but the simulator keeps a small
/// host-side one (enabled by default, see [`Mmu::set_fast_paths`]): a
/// direct-mapped `vp → physical page` cache consulted before the table
/// walk. It is filled only after an entry is valid and referenced, so a
/// hit skips nothing but idempotent work — simulated state and fault
/// counters are byte-identical with it on or off.
///
/// # Examples
///
/// ```
/// use kcm_mem::{Mmu, MemStats};
/// use kcm_mem::main_memory::MainMemory;
/// use kcm_arch::VAddr;
///
/// let mut mmu = Mmu::new();
/// let mut mem = MainMemory::new();
/// let mut stats = MemStats::default();
/// let p1 = mmu.translate_data(VAddr::new(5), &mut mem, &mut stats).unwrap();
/// let p2 = mmu.translate_data(VAddr::new(6), &mut mem, &mut stats).unwrap();
/// assert_eq!(p2.value(), p1.value() + 1); // same page, adjacent offsets
/// assert_eq!(stats.data_page_faults, 1);
/// ```
#[derive(Debug)]
pub struct Mmu {
    data_table: Vec<Entry>,
    code_table: Vec<Entry>,
    tlb: [TlbSlot; TLB_SLOTS],
    tlb_enabled: bool,
}

impl Default for Mmu {
    fn default() -> Mmu {
        Mmu::new()
    }
}

impl Mmu {
    /// A fresh MMU with no page mapped.
    pub fn new() -> Mmu {
        Mmu {
            data_table: vec![Entry::default(); kcm_arch::addr::PAGES_PER_SPACE as usize],
            code_table: vec![Entry::default(); kcm_arch::addr::PAGES_PER_SPACE as usize],
            tlb: [TLB_EMPTY; TLB_SLOTS],
            tlb_enabled: true,
        }
    }

    /// Enables or disables the host-side TLB (on by default). Purely a
    /// host speed switch; translation results and fault counters are
    /// identical either way.
    pub fn set_fast_paths(&mut self, enabled: bool) {
        self.tlb_enabled = enabled;
        self.tlb = [TLB_EMPTY; TLB_SLOTS];
    }

    /// Translates a data-space address, allocating a physical page on
    /// first touch (the host services the page fault, §2.1).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfPhysicalMemory`] if the board is full.
    #[inline]
    pub fn translate_data(
        &mut self,
        addr: VAddr,
        memory: &mut MainMemory,
        stats: &mut MemStats,
    ) -> Result<PhysAddr, MemFault> {
        let vp = addr.page().index();
        if self.tlb_enabled {
            let slot = self.tlb[vp % TLB_SLOTS];
            if slot.vp == vp as u32 {
                // The slot was filled after the entry became valid and
                // referenced, so the table walk below would only redo
                // idempotent work.
                return Ok(PhysAddr::new(slot.page, addr.page_offset()));
            }
        }
        let entry = &mut self.data_table[vp];
        if !entry.valid() {
            let page = memory
                .allocate_page()
                .ok_or(MemFault::OutOfPhysicalMemory)?;
            *entry = Entry::map(page);
            stats.data_page_faults += 1;
        }
        entry.0 |= ST_REFERENCED;
        let phys_page = entry.phys_page();
        if self.tlb_enabled {
            self.tlb[vp % TLB_SLOTS] = TlbSlot {
                vp: vp as u32,
                page: phys_page,
            };
        }
        Ok(PhysAddr::new(phys_page, addr.page_offset()))
    }

    /// Marks a data page dirty (the cache does this when writing back).
    pub fn mark_data_dirty(&mut self, addr: VAddr) {
        let vp = addr.page().index();
        self.data_table[vp].0 |= ST_DIRTY;
    }

    /// Translates a code-space address, counting a fault on first touch.
    /// The simulator stores code host-side, so translation here only
    /// models the fault/NRU bookkeeping.
    #[inline]
    pub fn translate_code(&mut self, addr: CodeAddr, stats: &mut MemStats) {
        let vp = addr.page().index();
        let entry = &mut self.code_table[vp];
        if !entry.valid() {
            *entry = Entry::map(0);
            stats.code_page_faults += 1;
        }
        entry.0 |= ST_REFERENCED;
    }

    /// Whether a data page is currently mapped.
    pub fn data_page_mapped(&self, addr: VAddr) -> bool {
        self.data_table[addr.page().index()].valid()
    }

    /// Number of mapped data pages.
    pub fn mapped_data_pages(&self) -> usize {
        self.data_table.iter().filter(|e| e.valid()).count()
    }

    /// Detaches a data page and re-attaches its physical frame to the code
    /// space (batch-compiled code hand-over, §3.2.1). Returns whether the
    /// page was mapped.
    pub fn move_data_page_to_code(&mut self, data_addr: VAddr, code_addr: CodeAddr) -> bool {
        let vp = data_addr.page().index();
        let entry = self.data_table[vp];
        if !entry.valid() {
            return false;
        }
        self.data_table[vp] = Entry::default();
        self.code_table[code_addr.page().index()] = entry;
        // The data mapping is gone: drop any host TLB entry for it.
        self.tlb[vp % TLB_SLOTS] = TLB_EMPTY;
        true
    }
}

/// Sanity check: page size constants agree between crates.
const _: () = assert!(PAGE_SIZE_WORDS == 1 << 14);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_translates_once() {
        let mut mmu = Mmu::new();
        let mut mem = MainMemory::new();
        let mut stats = MemStats::default();
        mmu.translate_data(VAddr::new(0), &mut mem, &mut stats)
            .unwrap();
        mmu.translate_data(VAddr::new(100), &mut mem, &mut stats)
            .unwrap();
        assert_eq!(stats.data_page_faults, 1);
        assert_eq!(mem.allocated_pages(), 1);
    }

    #[test]
    fn different_pages_allocate_separately() {
        let mut mmu = Mmu::new();
        let mut mem = MainMemory::new();
        let mut stats = MemStats::default();
        let a = mmu
            .translate_data(VAddr::new(0), &mut mem, &mut stats)
            .unwrap();
        let b = mmu
            .translate_data(VAddr::new(PAGE_SIZE_WORDS), &mut mem, &mut stats)
            .unwrap();
        assert_ne!(a.value() / PAGE_SIZE_WORDS, b.value() / PAGE_SIZE_WORDS);
        assert_eq!(stats.data_page_faults, 2);
    }

    #[test]
    fn translation_preserves_offset() {
        let mut mmu = Mmu::new();
        let mut mem = MainMemory::new();
        let mut stats = MemStats::default();
        let p = mmu
            .translate_data(VAddr::new(1234), &mut mem, &mut stats)
            .unwrap();
        assert_eq!(p.value() % PAGE_SIZE_WORDS, 1234);
    }

    #[test]
    fn code_faults_counted() {
        let mut mmu = Mmu::new();
        let mut stats = MemStats::default();
        mmu.translate_code(CodeAddr::new(0), &mut stats);
        mmu.translate_code(CodeAddr::new(1), &mut stats);
        assert_eq!(stats.code_page_faults, 1);
    }

    #[test]
    fn page_handover_unmaps_data_side() {
        let mut mmu = Mmu::new();
        let mut mem = MainMemory::new();
        let mut stats = MemStats::default();
        let va = VAddr::new(0);
        mmu.translate_data(va, &mut mem, &mut stats).unwrap();
        assert!(mmu.data_page_mapped(va));
        assert!(mmu.move_data_page_to_code(va, CodeAddr::new(0)));
        assert!(!mmu.data_page_mapped(va));
        // Moving an unmapped page reports false.
        assert!(!mmu.move_data_page_to_code(va, CodeAddr::new(0)));
    }
}
