//! The code cache (paper §3.2.4).
//!
//! "Unlike the data cache the instruction cache almost always is accessed
//! to read an instruction, but only very rarely to write. Therefore it is
//! designed as a write-through cache. [...] The size of the code cache is
//! 8K x 64 bits. The line size [...] is one. Since it is a write-through
//! cache the line size does not prevent the code cache from using the page
//! mode of the memory and fetching a few words ahead when a miss occurs."
//!
//! The simulator stores instruction bits host-side (in the loader), so this
//! unit models *presence and timing* only: which code words are resident
//! and what each fetch costs.

use crate::page_table::Mmu;
use crate::{MemConfig, MemStats};
use kcm_arch::timing::Cycles;
use kcm_arch::CodeAddr;

/// Code cache size in words.
pub const ICACHE_WORDS: usize = 8 * 1024;

/// How many sequential words the page-mode prefetch pulls in on a miss.
pub const PREFETCH_WORDS: u32 = 2;

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    addr: CodeAddr,
}

/// The direct-mapped, write-through code cache with page-mode prefetch.
#[derive(Debug)]
pub struct CodeCache {
    lines: Vec<Line>,
}

impl Default for CodeCache {
    fn default() -> CodeCache {
        CodeCache::new()
    }
}

impl CodeCache {
    /// An empty (all-invalid) cache.
    pub fn new() -> CodeCache {
        CodeCache {
            lines: vec![
                Line {
                    valid: false,
                    addr: CodeAddr::new(0)
                };
                ICACHE_WORDS
            ],
        }
    }

    fn index(addr: CodeAddr) -> usize {
        addr.value() as usize % ICACHE_WORDS
    }

    /// Times the fetch of the code word at `addr`: 0 extra cycles on a
    /// hit, the miss penalty otherwise. A miss fills the word and
    /// prefetches the next [`PREFETCH_WORDS`]`- 1` sequential words using
    /// the memory's page mode.
    #[inline]
    pub fn fetch(
        &mut self,
        addr: CodeAddr,
        mmu: &mut Mmu,
        config: &MemConfig,
        stats: &mut MemStats,
    ) -> Cycles {
        let idx = Self::index(addr);
        if self.lines[idx].valid && self.lines[idx].addr == addr {
            stats.icache_hits += 1;
            return 0;
        }
        stats.icache_misses += 1;
        mmu.translate_code(addr, stats);
        for i in 0..PREFETCH_WORDS {
            if addr.value() as u64 + i as u64 > 0x0FFF_FFFF {
                break; // prefetch beyond the top of the code space
            }
            let a = addr.offset(i as i64);
            let j = Self::index(a);
            self.lines[j] = Line {
                valid: true,
                addr: a,
            };
        }
        config.icache_miss
    }

    /// Times the fetch of `words` sequential code words starting at
    /// `addr` in one call — exactly [`CodeCache::fetch`] applied to each
    /// word in order (same counters, same per-word hit/miss decisions,
    /// same total penalty), batched so the machine's instruction fetch
    /// crosses the memory-system boundary once per instruction instead of
    /// once per word.
    #[inline]
    pub fn fetch_seq(
        &mut self,
        addr: CodeAddr,
        words: usize,
        mmu: &mut Mmu,
        config: &MemConfig,
        stats: &mut MemStats,
    ) -> Cycles {
        let mut extra = 0;
        for i in 0..words {
            extra += self.fetch(addr.offset(i as i64), mmu, config, stats);
        }
        extra
    }

    /// Write-through store into the code space (incremental compilation
    /// writes "directly to the code cache", §3.2.1): the line becomes
    /// resident; memory is updated by the caller's code store.
    pub fn write_through(&mut self, addr: CodeAddr) {
        let idx = Self::index(addr);
        self.lines[idx] = Line { valid: true, addr };
    }

    /// Invalidates the whole cache.
    pub fn invalidate(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CodeCache, Mmu, MemConfig, MemStats) {
        (
            CodeCache::new(),
            Mmu::new(),
            MemConfig::default(),
            MemStats::default(),
        )
    }

    #[test]
    fn sequential_fetches_benefit_from_prefetch() {
        let (mut c, mut mmu, cfg, mut s) = setup();
        assert!(c.fetch(CodeAddr::new(100), &mut mmu, &cfg, &mut s) > 0);
        assert_eq!(c.fetch(CodeAddr::new(101), &mut mmu, &cfg, &mut s), 0);
        // Beyond the prefetch window: miss again.
        assert!(c.fetch(CodeAddr::new(102), &mut mmu, &cfg, &mut s) > 0);
    }

    #[test]
    fn aliasing_addresses_evict() {
        let (mut c, mut mmu, cfg, mut s) = setup();
        let a = CodeAddr::new(5);
        let b = CodeAddr::new(5 + ICACHE_WORDS as u32);
        c.fetch(a, &mut mmu, &cfg, &mut s);
        c.fetch(b, &mut mmu, &cfg, &mut s);
        assert!(
            c.fetch(a, &mut mmu, &cfg, &mut s) > 0,
            "a must have been evicted"
        );
    }

    #[test]
    fn write_through_makes_line_resident() {
        let (mut c, mut mmu, cfg, mut s) = setup();
        c.write_through(CodeAddr::new(33));
        assert_eq!(c.fetch(CodeAddr::new(33), &mut mmu, &cfg, &mut s), 0);
    }

    #[test]
    fn invalidate_empties_cache() {
        let (mut c, mut mmu, cfg, mut s) = setup();
        c.fetch(CodeAddr::new(1), &mut mmu, &cfg, &mut s);
        c.invalidate();
        assert!(c.fetch(CodeAddr::new(1), &mut mmu, &cfg, &mut s) > 0);
    }

    #[test]
    fn hit_ratio_accounting() {
        let (mut c, mut mmu, cfg, mut s) = setup();
        for _ in 0..4 {
            c.fetch(CodeAddr::new(9), &mut mmu, &cfg, &mut s);
        }
        assert_eq!(s.icache_misses, 1);
        assert_eq!(s.icache_hits, 3);
    }
}
