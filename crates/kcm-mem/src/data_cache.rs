//! The data cache (paper §3.2.4).
//!
//! Prolog's read:write ratio is about 1:1 (items pushed onto stacks are
//! often never read back), so the data cache is a *store-in* (copy-back)
//! cache. It is direct-mapped with a line size of one word — equivalent to
//! a top-of-stack circular buffer for stack accesses — but "split into 8
//! sections of 1K x 64 bits each. The sections are selected by the zone
//! field of the address word", which prevents the inter-stack collisions a
//! plain direct-mapped cache suffers when top-of-stack pointers alias.

use crate::main_memory::MainMemory;
use crate::page_table::Mmu;
use crate::{MemConfig, MemFault, MemStats};
use kcm_arch::timing::Cycles;
use kcm_arch::{VAddr, Word, Zone};

/// Total cache size in words (8K × 64 bits).
pub const DCACHE_WORDS: usize = 8 * 1024;

/// Words per section (1K × 64 bits).
pub const SECTION_WORDS: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    dirty: bool,
    addr: VAddr,
    data: Word,
}

const EMPTY: Line = Line {
    valid: false,
    dirty: false,
    addr: VAddr::new(0),
    data: Word::ZERO,
};

/// The direct-mapped, store-in, one-word-line data cache.
///
/// The simulator additionally keeps a host-side *last-line* hint (see
/// [`DataCache::set_fast_paths`]): the index of the most recently accessed
/// line. Stack-discipline access patterns hit the same line repeatedly, so
/// the common hit becomes one compare + load, skipping the zone-section
/// index computation. The hint only short-circuits lookups whose outcome
/// is a hit on that exact line and bumps the same counters, so the
/// simulated numbers are byte-identical with it on or off.
#[derive(Debug)]
pub struct DataCache {
    lines: Vec<Line>,
    sectioned: bool,
    fast: bool,
    last_idx: u32,
}

impl DataCache {
    /// Creates an empty cache. With `sectioned` set the eight sections are
    /// selected by the zone field (the KCM design); without it the cache is
    /// a plain 8K direct-mapped array (the configuration whose hit ratio
    /// "dropped quite dramatically" in the paper's experiment).
    pub fn new(sectioned: bool) -> DataCache {
        DataCache {
            lines: vec![EMPTY; DCACHE_WORDS],
            sectioned,
            fast: true,
            last_idx: 0,
        }
    }

    /// Whether this cache is in sectioned mode.
    pub fn is_sectioned(&self) -> bool {
        self.sectioned
    }

    /// Enables or disables the host-side last-line hint (on by default).
    /// Purely a host speed switch; hits, misses and contents are identical
    /// either way.
    pub fn set_fast_paths(&mut self, enabled: bool) {
        self.fast = enabled;
        self.last_idx = 0;
    }

    /// The last-line fast path: a hit on the most recently accessed line.
    /// Lines are only ever stored at their computed index, so finding
    /// `addr` in the hinted line proves the full index computation would
    /// land on the same line and hit.
    #[inline]
    fn last_line_hit(&self, addr: VAddr) -> Option<(usize, Line)> {
        if !self.fast {
            return None;
        }
        let idx = self.last_idx as usize;
        let line = self.lines[idx];
        (line.valid && line.addr == addr).then_some((idx, line))
    }

    fn index(&self, addr: VAddr) -> usize {
        if self.sectioned {
            let zone = Zone::of_addr(addr).map_or(0, Zone::cache_section);
            zone * SECTION_WORDS + (addr.value() as usize % SECTION_WORDS)
        } else {
            addr.value() as usize % DCACHE_WORDS
        }
    }

    /// Reads a word, filling the line from memory on a miss. Returns the
    /// word and the extra cycle penalty (0 on hit).
    ///
    /// # Errors
    ///
    /// Propagates physical-page allocation failure.
    #[inline]
    pub fn read(
        &mut self,
        addr: VAddr,
        memory: &mut MainMemory,
        mmu: &mut Mmu,
        config: &MemConfig,
        stats: &mut MemStats,
    ) -> Result<(Word, Cycles), MemFault> {
        if let Some((_, line)) = self.last_line_hit(addr) {
            stats.dcache_hits += 1;
            return Ok((line.data, 0));
        }
        let idx = self.index(addr);
        if self.lines[idx].valid && self.lines[idx].addr == addr {
            stats.dcache_hits += 1;
            self.last_idx = idx as u32;
            return Ok((self.lines[idx].data, 0));
        }
        stats.dcache_misses += 1;
        let mut extra = config.dcache_miss;
        extra += self.evict(idx, memory, mmu, config, stats)?;
        let phys = mmu.translate_data(addr, memory, stats)?;
        let data = memory.read(phys);
        self.lines[idx] = Line {
            valid: true,
            dirty: false,
            addr,
            data,
        };
        self.last_idx = idx as u32;
        Ok((data, extra))
    }

    /// Writes a word. The store-in policy means a write allocates the line
    /// and marks it dirty without touching memory — "data is written to
    /// memory only when the cache cell is needed otherwise".
    ///
    /// # Errors
    ///
    /// Propagates physical-page allocation failure (from evicting a dirty
    /// victim).
    #[inline]
    pub fn write(
        &mut self,
        addr: VAddr,
        value: Word,
        memory: &mut MainMemory,
        mmu: &mut Mmu,
        config: &MemConfig,
        stats: &mut MemStats,
    ) -> Result<Cycles, MemFault> {
        if let Some((idx, _)) = self.last_line_hit(addr) {
            stats.dcache_hits += 1;
            self.lines[idx].data = value;
            self.lines[idx].dirty = true;
            return Ok(0);
        }
        let idx = self.index(addr);
        if self.lines[idx].valid && self.lines[idx].addr == addr {
            stats.dcache_hits += 1;
            self.lines[idx].data = value;
            self.lines[idx].dirty = true;
            self.last_idx = idx as u32;
            return Ok(0);
        }
        stats.dcache_misses += 1;
        // Write-allocate with no fill: the line size is one word, so the
        // write fully covers the line and no memory read is needed — the
        // allocation is free beyond a possible dirty-victim write-back.
        let extra = self.evict(idx, memory, mmu, config, stats)?;
        self.lines[idx] = Line {
            valid: true,
            dirty: true,
            addr,
            data: value,
        };
        self.last_idx = idx as u32;
        // Ensure the page exists so a later write-back cannot fail late.
        mmu.translate_data(addr, memory, stats)?;
        Ok(extra)
    }

    fn evict(
        &mut self,
        idx: usize,
        memory: &mut MainMemory,
        mmu: &mut Mmu,
        config: &MemConfig,
        stats: &mut MemStats,
    ) -> Result<Cycles, MemFault> {
        let line = self.lines[idx];
        if line.valid && line.dirty {
            let phys = mmu.translate_data(line.addr, memory, stats)?;
            memory.write(phys, line.data);
            mmu.mark_data_dirty(line.addr);
            stats.dcache_writebacks += 1;
            return Ok(config.dcache_writeback);
        }
        Ok(0)
    }

    /// Writes back every dirty line.
    ///
    /// # Errors
    ///
    /// Propagates physical-page allocation failure.
    pub fn flush(
        &mut self,
        memory: &mut MainMemory,
        mmu: &mut Mmu,
        stats: &mut MemStats,
    ) -> Result<(), MemFault> {
        for idx in 0..self.lines.len() {
            let line = self.lines[idx];
            if line.valid && line.dirty {
                let phys = mmu.translate_data(line.addr, memory, stats)?;
                memory.write(phys, line.data);
                mmu.mark_data_dirty(line.addr);
                self.lines[idx].dirty = false;
                stats.dcache_writebacks += 1;
            }
        }
        Ok(())
    }

    /// Untimed lookup: the cached word for `addr`, if present.
    pub fn peek(&self, addr: VAddr) -> Option<Word> {
        let idx = self.index(addr);
        let line = self.lines[idx];
        (line.valid && line.addr == addr).then_some(line.data)
    }

    /// Host coherence hook: update a present line in place (no timing, no
    /// dirty marking — memory was already written).
    pub fn update_if_present(&mut self, addr: VAddr, value: Word) {
        let idx = self.index(addr);
        if self.lines[idx].valid && self.lines[idx].addr == addr {
            self.lines[idx].data = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DataCache, MainMemory, Mmu, MemConfig, MemStats) {
        (
            DataCache::new(true),
            MainMemory::new(),
            Mmu::new(),
            MemConfig::default(),
            MemStats::default(),
        )
    }

    fn a(zone: Zone, off: u32) -> VAddr {
        VAddr::new(zone.base().value() + off)
    }

    #[test]
    fn read_after_write_hits() {
        let (mut c, mut m, mut mmu, cfg, mut s) = setup();
        let addr = a(Zone::Global, 5);
        c.write(addr, Word::int(1), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        let (w, extra) = c.read(addr, &mut m, &mut mmu, &cfg, &mut s).unwrap();
        assert_eq!(w.as_int(), Some(1));
        assert_eq!(extra, 0);
        assert_eq!(s.dcache_hits, 1);
    }

    #[test]
    fn store_in_defers_memory_write() {
        let (mut c, mut m, mut mmu, cfg, mut s) = setup();
        let addr = a(Zone::Global, 9);
        c.write(addr, Word::int(42), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        // The page was allocated but not written.
        let phys = mmu.translate_data(addr, &mut m, &mut s).unwrap();
        assert_eq!(m.read(phys), Word::ZERO);
        // Eviction via a colliding address in the same section flushes it.
        let collide = a(Zone::Global, 9 + SECTION_WORDS as u32);
        c.read(collide, &mut m, &mut mmu, &cfg, &mut s).unwrap();
        assert_eq!(m.read(phys).as_int(), Some(42));
        assert_eq!(s.dcache_writebacks, 1);
    }

    #[test]
    fn sectioned_cache_separates_zones() {
        let (mut c, mut m, mut mmu, cfg, mut s) = setup();
        // Same in-section offset in two zones: no collision when sectioned.
        let g = a(Zone::Global, 7);
        let l = a(Zone::Local, 7);
        c.write(g, Word::int(1), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        c.write(l, Word::int(2), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        assert_eq!(c.peek(g).unwrap().as_int(), Some(1));
        assert_eq!(c.peek(l).unwrap().as_int(), Some(2));
    }

    #[test]
    fn unsectioned_cache_lets_zones_collide() {
        let mut c = DataCache::new(false);
        let mut m = MainMemory::new();
        let mut mmu = Mmu::new();
        let cfg = MemConfig::default();
        let mut s = MemStats::default();
        // Zone bases are 16M apart → equal modulo 8K: they collide.
        let g = a(Zone::Global, 7);
        let l = a(Zone::Local, 7);
        c.write(g, Word::int(1), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        c.write(l, Word::int(2), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        assert_eq!(c.peek(g), None, "global line must have been evicted");
        assert_eq!(c.peek(l).unwrap().as_int(), Some(2));
        assert_eq!(s.dcache_writebacks, 1);
    }

    #[test]
    fn flush_clears_dirt_without_invalidating() {
        let (mut c, mut m, mut mmu, _cfg, mut s) = setup();
        let addr = a(Zone::Trail, 3);
        let cfg = MemConfig::default();
        c.write(addr, Word::int(5), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        c.flush(&mut m, &mut mmu, &mut s).unwrap();
        // Still cached (a flush is not an invalidate).
        assert_eq!(c.peek(addr).unwrap().as_int(), Some(5));
        // Flushing twice writes back nothing new.
        let wb = s.dcache_writebacks;
        c.flush(&mut m, &mut mmu, &mut s).unwrap();
        assert_eq!(s.dcache_writebacks, wb);
    }

    #[test]
    fn miss_penalty_reported() {
        let (mut c, mut m, mut mmu, cfg, mut s) = setup();
        let addr = a(Zone::Global, 11);
        let (_, extra) = c.read(addr, &mut m, &mut mmu, &cfg, &mut s).unwrap();
        assert_eq!(extra, cfg.dcache_miss);
    }

    #[test]
    fn dirty_eviction_costs_more() {
        let (mut c, mut m, mut mmu, cfg, mut s) = setup();
        let addr = a(Zone::Global, 0);
        let collide = a(Zone::Global, SECTION_WORDS as u32);
        c.write(addr, Word::int(1), &mut m, &mut mmu, &cfg, &mut s)
            .unwrap();
        let (_, extra) = c.read(collide, &mut m, &mut mmu, &cfg, &mut s).unwrap();
        assert_eq!(extra, cfg.dcache_miss + cfg.dcache_writeback);
    }
}
