//! The PLM baseline machine model (paper Tables 1 and 2).
//!
//! The PLM (Dobry, Despain, Patt — Berkeley, ISCA 1985) is the microcoded
//! WAM processor the paper compares against: byte-coded instructions
//! (averaging ≈3.3 bytes), cdr-coded lists, eager choice points, built-ins
//! through a 3-cycle escape, a 100 ns cycle. "The PLM timings result from
//! a simulation of the benchmark programs" — so does this model.
//!
//! Two exports:
//!
//! * [`model`] — the execution model (a [`BaselineModel`]): standard-WAM
//!   compilation (no shallow backtracking, no native arithmetic) with
//!   PLM-calibrated micro-costs at 100 ns.
//! * [`static_size`] — the Table 1 code-size model: byte-encoded
//!   instructions with cdr-coding of statically known list cells.

#![warn(missing_docs)]

use kcm_arch::{CostModel, Instr};
use kcm_system::{KcmError, QueryOpts};
use wam_baseline::BaselineModel;

/// PLM cycle time: 100 ns (10 MHz).
pub const PLM_CYCLE_NS: f64 = 100.0;

/// The PLM execution model.
///
/// Cost deltas against KCM, each an architectural difference the paper
/// names:
///
/// * eager choice points (no §3.1.5 shallow backtracking) — configured at
///   the engine level;
/// * `instr_overhead` 1: byte-stream decoding against KCM's fixed-width
///   predecoded words (§2.3);
/// * `unify_dispatch` 2 and slower memory ops: no MWAC one-cycle 16-way
///   type dispatch (§3.1.4), narrower datapaths;
/// * software trail check (`trail_check_sw` 1) instead of KCM's parallel
///   comparators (§3.1.5);
/// * `escape_base` 3: the paper's "standard 3 cycles" escape assumption;
/// * arithmetic through the escape evaluator (compiler option).
pub fn model() -> BaselineModel {
    let mut m = BaselineModel::standard_wam("plm", PLM_CYCLE_NS);
    m.cost = CostModel {
        cycle_ns: PLM_CYCLE_NS,
        instr_overhead: 1,
        unify_dispatch: 2,
        heap_read: 2,
        heap_write: 2,
        trail_check_sw: 1,
        escape_base: 3,
        jump: 3,
        proceed: 3,
        switch_on_term: 3,
        ..CostModel::default()
    };
    m
}

/// Runs a program/query pair on the PLM model.
///
/// # Errors
///
/// Propagates parse, compile and machine errors.
#[deprecated(since = "0.1.0", note = "use `model().run` with `QueryOpts`")]
pub fn run_plm(
    source: &str,
    query: &str,
    enumerate_all: bool,
) -> Result<kcm_cpu::Outcome, KcmError> {
    let opts = QueryOpts {
        enumerate_all,
        ..QueryOpts::default()
    };
    model().run(source, query, &opts)
}

/// Static code size of a program under the PLM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlmSize {
    /// PLM instruction count.
    pub instrs: usize,
    /// PLM code bytes.
    pub bytes: usize,
}

/// Byte cost of one WAM-level instruction under the PLM's byte encoding:
/// one opcode byte, one byte per register/slot operand, four bytes per
/// constant, functor or code address, four bytes per table entry.
fn byte_size(i: &Instr) -> usize {
    match i {
        // Artifacts of the KCM compilation absent from PLM code; the
        // tail-chaining instruction is PLM's cdr *bit* inside the
        // preceding instruction (the cdr-coding advantage of §4.1).
        Instr::Neck | Instr::Mark | Instr::UnifyTailList => 0,
        Instr::Proceed
        | Instr::Deallocate
        | Instr::TrustMe
        | Instr::Cut
        | Instr::CutEnv
        | Instr::Fail
        | Instr::UnifyNil => 1,
        Instr::Allocate { .. }
        | Instr::UnifyVariable { .. }
        | Instr::UnifyVariableY { .. }
        | Instr::UnifyValue { .. }
        | Instr::UnifyValueY { .. }
        | Instr::UnifyLocalValue { .. }
        | Instr::UnifyLocalValueY { .. }
        | Instr::UnifyVoid { .. }
        | Instr::GetNil { .. }
        | Instr::GetList { .. }
        | Instr::PutNil { .. }
        | Instr::PutList { .. }
        | Instr::Escape { .. } => 2,
        Instr::GetVariable { .. }
        | Instr::GetVariableY { .. }
        | Instr::GetValue { .. }
        | Instr::GetValueY { .. }
        | Instr::PutVariable { .. }
        | Instr::PutVariableY { .. }
        | Instr::PutValue { .. }
        | Instr::PutValueY { .. }
        | Instr::PutUnsafeValue { .. } => 3,
        Instr::GetConstant { .. }
        | Instr::PutConstant { .. }
        | Instr::GetStructure { .. }
        | Instr::PutStructure { .. } => 6,
        Instr::UnifyConstant { .. } => 5,
        Instr::Call { .. } | Instr::Execute { .. } => 5,
        Instr::TryMeElse { .. }
        | Instr::RetryMeElse { .. }
        | Instr::Try { .. }
        | Instr::Retry { .. }
        | Instr::Trust { .. }
        | Instr::Jump { .. } => 5,
        Instr::SwitchOnTerm { .. } => 1 + 4 * 4,
        Instr::SwitchOnConstant { table, .. } => 1 + 4 + 8 * table.len(),
        Instr::SwitchOnStructure { table, .. } => 1 + 4 + 8 * table.len(),
        // Native KCM instructions never appear in PLM-compiled code
        // (inline_arith is off), but cost them plausibly anyway.
        _ => 3,
    }
}

/// Computes the PLM static size of `source`: the standard-WAM compilation
/// re-encoded in bytes, with cdr-coding credit.
///
/// cdr-coding lets the PLM "compile a statically known list cell in one
/// instruction rather than two in KCM" (§4.1): every chained static list
/// cell saves the `unify_variable Xn` / `get_list Xn` (or the spine-
/// threading `put_list` / `unify_value`) pair.
///
/// # Errors
///
/// Propagates parse and compile errors.
pub fn static_size(source: &str) -> Result<PlmSize, KcmError> {
    let m = model();
    let instrs = wam_baseline::compiled_instructions(&m, source, &["main_star"])?;
    let mut count = 0usize;
    let mut bytes = 0usize;
    for i in &instrs {
        if matches!(i, Instr::Neck | Instr::Mark | Instr::UnifyTailList) {
            continue;
        }
        count += 1;
        bytes += byte_size(i);
    }
    Ok(PlmSize {
        instrs: count,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plm_runs_and_answers_correctly() {
        let out = model()
            .run(
                "nrev([],[]). nrev([H|T],R) :- nrev(T,RT), app(RT,[H],R).
                 app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).",
                "nrev([1,2,3], R)",
                &QueryOpts::first(),
            )
            .unwrap();
        assert!(out.success);
        assert_eq!(out.solutions[0][0].1.to_string(), "[3,2,1]");
        // 100 ns clock reported.
        assert!((out.stats.cycle_ns - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn plm_is_slower_than_kcm() {
        let src = "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).";
        let q = "app([1,2,3,4,5,6,7,8,9,10],[0],X)";
        let plm = model().run(src, q, &QueryOpts::first()).unwrap();
        let mut kcm = kcm_system::Kcm::new();
        kcm.load(src).unwrap();
        let k = kcm.query(q, &QueryOpts::first()).unwrap();
        let ratio = plm.stats.ms() / k.stats.ms();
        assert!(ratio > 1.5, "PLM/KCM ratio {ratio}");
    }

    #[test]
    fn byte_model_averages_near_published_density() {
        // PLM instructions average about 3.3 bytes (§4.1).
        let src = "
            app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).
            member(X,[X|_]). member(X,[_|T]) :- member(X,T).
            main :- app([a,b,c],[d],X), member(d,X).
        ";
        let s = static_size(src).unwrap();
        let avg = s.bytes as f64 / s.instrs as f64;
        assert!((2.0..5.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn cdr_coding_credits_static_lists() {
        // PLM spends one instruction per static list cell (cdr bit); KCM
        // spends two (item + tail chain).
        let with_list = static_size("p([a,b,c,d,e,f]).").unwrap();
        let without = static_size("p(x).").unwrap();
        let delta = with_list.instrs - without.instrs;
        assert!(delta <= 7, "delta {delta}");
    }
}
