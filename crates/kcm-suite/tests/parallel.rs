//! Determinism of the pooled suite runner: a [`SessionPool`] with one
//! worker and one with many must produce the *same bytes* — identical
//! solutions, solution orderings and per-session [`RunStats`] for every
//! program of the PLM suite. Parallelism is a scheduling detail here,
//! never an observable one; the evaluation tables depend on that.

use kcm_suite::programs;
use kcm_suite::runner::{run_program, run_suite_pooled, Measurement, Variant};
use kcm_system::{Kcm, KcmEngine, MachineConfig, QueryJob, RunStats, SessionPool};

/// Renders everything observable about a measurement into one comparable
/// string (plus the stats, compared structurally).
fn fingerprint(m: &Measurement) -> (String, RunStats) {
    (
        format!(
            "{} {:?} success={} solutions={:?} output={:?}",
            m.name, m.variant, m.outcome.success, m.outcome.solutions, m.outcome.output
        ),
        m.outcome.stats,
    )
}

#[test]
fn one_worker_matches_many_workers_over_the_full_suite() {
    let suite = programs::suite();
    let cfg = MachineConfig::default();
    let serial = run_suite_pooled(&suite, Variant::Starred, &cfg, &SessionPool::new(1));
    let pooled = run_suite_pooled(&suite, Variant::Starred, &cfg, &SessionPool::new(4));
    assert_eq!(serial.len(), suite.len());
    assert_eq!(pooled.len(), suite.len());
    for ((p, a), b) in suite.iter().zip(&serial).zip(&pooled) {
        let a = a
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: serial failed: {e}", p.name));
        let b = b
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: pooled failed: {e}", p.name));
        assert_eq!(a.name, p.name, "pool must preserve program order");
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "{}: 1 vs 4 workers diverged",
            p.name
        );
    }
}

#[test]
fn pooled_runner_matches_the_serial_path_byte_for_byte() {
    let suite = programs::suite();
    let cfg = MachineConfig::default();
    let pooled = run_suite_pooled(&suite, Variant::Timed, &cfg, &SessionPool::new(4));
    let engine = KcmEngine::with_config(cfg);
    for (p, pooled) in suite.iter().zip(&pooled) {
        let serial = run_program(&engine, p, Variant::Timed)
            .unwrap_or_else(|e| panic!("{}: serial failed: {e}", p.name));
        let pooled = pooled
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: pooled failed: {e}", p.name));
        assert_eq!(fingerprint(&serial), fingerprint(pooled), "{}", p.name);
    }
}

#[test]
fn session_pool_queries_deterministic_per_program() {
    // The pool's multi-query path: both drivers of every suite program as
    // a job batch against the consulted program, 1 worker vs 4.
    for p in programs::suite() {
        let mut kcm = Kcm::new();
        kcm.load(p.source)
            .unwrap_or_else(|e| panic!("{}: consult: {e}", p.name));
        let jobs = vec![
            QueryJob::first_solution(p.query),
            QueryJob::first_solution(p.starred_query),
        ];
        let one = SessionPool::new(1)
            .run_queries(&kcm, &jobs)
            .unwrap_or_else(|e| panic!("{}: batch: {e}", p.name));
        let many = SessionPool::new(4)
            .run_queries(&kcm, &jobs)
            .unwrap_or_else(|e| panic!("{}: batch: {e}", p.name));
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.session, b.session, "{}: session order changed", p.name);
            assert_eq!(a.query, b.query, "{}: job order changed", p.name);
            let oa = a
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let ob = b
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(oa.success, ob.success, "{}", p.name);
            assert_eq!(
                format!("{:?}", oa.solutions),
                format!("{:?}", ob.solutions),
                "{}",
                p.name
            );
            assert_eq!(oa.output, ob.output, "{}", p.name);
            assert_eq!(oa.stats, ob.stats, "{}: per-session stats diverged", p.name);
        }
    }
}

#[test]
fn pooled_suite_reduces_wall_clock_on_multicore_hosts() {
    // Only meaningful where there are cores to fan out on; single-core CI
    // boxes (and this exact box) still exercise every determinism test
    // above, so nothing about correctness is lost by gating.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping wall-clock check: only {cores} core(s) available");
        return;
    }
    let suite = programs::suite();
    let cfg = MachineConfig::default();
    // Warm up (page in code, fill allocator pools) so the comparison is
    // about parallelism, not first-touch costs.
    run_suite_pooled(&suite, Variant::Starred, &cfg, &SessionPool::new(1));
    let t1 = std::time::Instant::now();
    run_suite_pooled(&suite, Variant::Starred, &cfg, &SessionPool::new(1));
    let serial = t1.elapsed();
    let t4 = std::time::Instant::now();
    run_suite_pooled(&suite, Variant::Starred, &cfg, &SessionPool::new(4));
    let pooled = t4.elapsed();
    assert!(
        pooled < serial,
        "4 workers ({pooled:?}) should beat 1 worker ({serial:?}) on a {cores}-core host"
    );
}
