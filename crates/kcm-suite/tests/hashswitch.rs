//! The hash-switch invariant, proved fastpath-style over the whole
//! suite: resolving `switch_on_constant` / `switch_on_structure` through
//! the link-time hash side table (`MachineConfig::hash_switch`) is
//! *speed-only*. Every benchmark run with the hash path on and off must
//! produce the same bytes everywhere the simulation is observable —
//! solutions, output, [`RunStats`] (including the memory-system
//! counters), and the hardware-mechanism profile, whose switch counters
//! are dispatch outcomes and therefore identical on both paths.
//!
//! The wide-fact-base and float-key tests below exercise the paths the
//! 14-program suite cannot: tables big enough to get a hash index
//! (≥ 8 entries), depth-2 second-level dispatch, and the bitwise float
//! key semantics (`-0.0` ≠ `0.0`; dispatch must agree with unification).

use kcm_suite::programs;
use kcm_suite::runner::{run_suite_pooled, Variant};
use kcm_system::{Kcm, MachineConfig, QueryOpts, SessionPool, Tier};

/// The two configurations under comparison: identical except for the
/// host-speed switch.
fn configs() -> (MachineConfig, MachineConfig) {
    let hashed = MachineConfig {
        profile: true,
        ..MachineConfig::default()
    };
    assert!(hashed.hash_switch, "hash switch must default on");
    let mut linear = hashed.clone();
    linear.hash_switch = false;
    (hashed, linear)
}

#[test]
fn hash_switch_is_byte_identical_over_the_full_suite() {
    let suite = programs::suite();
    let (hashed_cfg, linear_cfg) = configs();
    for workers in [1usize, 4] {
        let pool = SessionPool::new(workers);
        let hashed = run_suite_pooled(&suite, Variant::Timed, &hashed_cfg, &pool);
        let linear = run_suite_pooled(&suite, Variant::Timed, &linear_cfg, &pool);
        for ((p, h), l) in suite.iter().zip(&hashed).zip(&linear) {
            let h = h
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: hashed run failed: {e}", p.name));
            let l = l
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: linear run failed: {e}", p.name));
            let (h, l) = (&h.outcome, &l.outcome);
            assert_eq!(h.success, l.success, "{}: success diverged", p.name);
            assert_eq!(h.solutions, l.solutions, "{}: solutions diverged", p.name);
            assert_eq!(h.output, l.output, "{}: output diverged", p.name);
            assert_eq!(
                h.stats, l.stats,
                "{} ({workers} workers): RunStats diverged",
                p.name
            );
            assert_eq!(
                h.stats.mem, l.stats.mem,
                "{} ({workers} workers): MemStats diverged",
                p.name
            );
            assert_eq!(
                h.profile, l.profile,
                "{} ({workers} workers): hardware profile diverged",
                p.name
            );
        }
    }
}

/// Runs one query on a fresh session under `cfg`, returning the outcome.
fn run_with(cfg: &MachineConfig, src: &str, query: &str) -> kcm_system::Outcome {
    let mut kcm = Kcm::with_config(cfg.clone());
    kcm.load(src).unwrap_or_else(|e| panic!("consult: {e}"));
    let opts = QueryOpts {
        enumerate_all: true,
        ..QueryOpts::default()
    };
    kcm.query(query, &opts)
        .unwrap_or_else(|e| panic!("run: {e}"))
}

/// Asserts a query's outcome is byte-identical with the hash path on and
/// off, and returns the (hashed) outcome for content checks.
fn identical_on_both_paths(src: &str, query: &str) -> kcm_system::Outcome {
    let (hashed_cfg, linear_cfg) = configs();
    let h = run_with(&hashed_cfg, src, query);
    let l = run_with(&linear_cfg, src, query);
    assert_eq!(h.success, l.success, "{query}: success diverged");
    assert_eq!(h.solutions, l.solutions, "{query}: solutions diverged");
    assert_eq!(h.stats, l.stats, "{query}: RunStats diverged");
    assert_eq!(h.profile, l.profile, "{query}: profile diverged");
    h
}

/// A flat fact base wide enough for a hash index: `f(kI, vI)` for
/// `I` in `0..n` (unique constant first keys).
fn wide_facts(n: usize) -> String {
    (0..n).map(|i| format!("f(k{i}, v{i}). ")).collect()
}

/// A fact base shaped for depth-2 indexing: three first-key groups of
/// three constant second keys each.
const PAIRS: &str = "
    pair(g0, a, 1). pair(g0, b, 2). pair(g0, c, 3).
    pair(g1, a, 4). pair(g1, b, 5). pair(g1, c, 6).
    pair(g2, a, 7). pair(g2, b, 8). pair(g2, c, 9).
";

#[test]
fn wide_fact_lookup_hits_the_hash_index() {
    let src = wide_facts(200);
    let h = identical_on_both_paths(&src, "f(k137, V)");
    assert!(h.success);
    assert_eq!(h.solutions.len(), 1);
    assert_eq!(h.solutions[0][0].1.to_string(), "v137");
    assert!(
        h.profile.switches.hits >= 1,
        "the constant switch must have dispatched through the table"
    );
    // A hit at table ordinal k charges k + 1 probes — the linear-scan
    // cost, preserved exactly by the hash path.
    assert!(h.profile.switches.probes >= 138 - 1);
}

#[test]
fn wide_fact_miss_charges_the_full_table() {
    let h = identical_on_both_paths(&wide_facts(50), "f(zzz, V)");
    assert!(!h.success);
    assert_eq!(h.profile.switches.misses, 1);
    assert_eq!(h.profile.switches.hits, 0);
    assert_eq!(h.profile.switches.probes, 50, "a miss probes every entry");
}

#[test]
fn depth2_point_lookup_takes_the_second_level_switch() {
    let h = identical_on_both_paths(PAIRS, "pair(g1, b, X)");
    assert!(h.success);
    assert_eq!(h.solutions.len(), 1);
    assert_eq!(h.solutions[0][0].1.to_string(), "5");
    assert!(
        h.profile.switches.depth2 >= 1,
        "the A2 switch of depth-2 indexing must have executed"
    );
}

#[test]
fn depth2_with_unbound_second_arg_enumerates_the_bucket_in_order() {
    let h = identical_on_both_paths(PAIRS, "pair(g1, M, X)");
    assert!(h.success);
    let got: Vec<String> = h
        .solutions
        .iter()
        .map(|s| format!("{}-{}", s[0].1, s[1].1))
        .collect();
    assert_eq!(got, ["a-4", "b-5", "c-6"], "clause order must survive");
}

#[test]
fn depth2_with_everything_unbound_enumerates_all_facts() {
    let h = identical_on_both_paths(PAIRS, "pair(G, M, X)");
    assert!(h.success);
    assert_eq!(h.solutions.len(), 9);
}

#[test]
fn depth2_rejects_missing_and_mistyped_second_keys() {
    // A second key absent from every clause is a genuine failure...
    let missing = identical_on_both_paths(PAIRS, "pair(g1, z, X)");
    assert!(!missing.success);
    // ...and so is a compound second argument: a constant head arg can
    // never unify with a structure or a list.
    let structure = identical_on_both_paths(PAIRS, "pair(g1, f(a), X)");
    assert!(!structure.success);
    let list = identical_on_both_paths(PAIRS, "pair(g1, [a], X)");
    assert!(!list.success);
}

/// Nine float-keyed facts — wide enough for a hash index — including the
/// `0.0` / `-0.0` pair whose keys must stay distinct.
const FLOATS: &str = "
    fk(0.0, pos). fk(-0.0, neg). fk(1.0, one). fk(2.0, two). fk(3.0, three).
    fk(4.0, four). fk(5.0, five). fk(6.0, six). fk(7.0, seven).
";

#[test]
fn float_keys_dispatch_bitwise() {
    let pos = identical_on_both_paths(FLOATS, "fk(0.0, V)");
    assert_eq!(pos.solutions.len(), 1);
    assert_eq!(pos.solutions[0][0].1.to_string(), "pos");
    let neg = identical_on_both_paths(FLOATS, "fk(-0.0, V)");
    assert_eq!(neg.solutions.len(), 1);
    assert_eq!(
        neg.solutions[0][0].1.to_string(),
        "neg",
        "-0.0 must select its own table entry, not 0.0's"
    );
}

#[test]
fn switch_counters_are_tier_independent() {
    // The probe/hit/miss/depth-2 counters are dispatch outcomes,
    // determined by program semantics alone — the clockless native tier
    // must report exactly the numbers the cycle tier does.
    let wide = wide_facts(100);
    for (src, query) in [
        (wide.as_str(), "f(k42, V)"),
        (PAIRS, "pair(g2, c, X)"),
        (PAIRS, "pair(g9, c, X)"),
    ] {
        let run_tier = |tier: Tier| {
            let mut kcm = Kcm::new();
            kcm.load(src).unwrap_or_else(|e| panic!("consult: {e}"));
            let opts = QueryOpts {
                enumerate_all: true,
                tier,
                ..QueryOpts::default()
            };
            kcm.query(query, &opts)
                .unwrap_or_else(|e| panic!("run: {e}"))
        };
        let c = run_tier(Tier::Cycle);
        let n = run_tier(Tier::Native);
        assert_eq!(c.solutions, n.solutions, "{query}: solutions diverged");
        assert_eq!(
            c.profile.switches, n.profile.switches,
            "{query}: switch counters diverged across tiers"
        );
    }
}

#[test]
fn float_dispatch_agrees_with_unification() {
    // The invariant behind the bitwise keys: table dispatch may only
    // prune clauses head unification would reject. Unification compares
    // float constants bitwise (same_constant), so a single-clause
    // predicate — no switch at all — must make the same distinction the
    // indexed one does.
    let single = identical_on_both_paths("p0(0.0).", "p0(-0.0)");
    assert!(!single.success, "-0.0 must not unify with 0.0");
    let indexed = identical_on_both_paths(FLOATS, "fk(0.5, V)");
    assert!(!indexed.success, "an absent float key must fail");
}
