//! Ground-truth correctness of every suite program: the benchmarks must
//! not only run, they must compute the right answers.

use kcm_suite::programs;
use kcm_suite::runner::{run_program, Variant};
use kcm_system::KcmEngine;

fn output_of(name: &str) -> String {
    let p = programs::program(name).expect("in suite");
    let m = run_program(&KcmEngine::new(), &p, Variant::Timed).expect("runs");
    assert!(m.outcome.success, "{name} must succeed");
    m.outcome.output
}

#[test]
fn con1_concatenates() {
    assert_eq!(output_of("con1"), "[a,b,c,d,e,f]\n");
}

#[test]
fn con6_chains_six_concatenations() {
    assert_eq!(output_of("con6"), "[a,b,c,d,e,f,g,h,i,j,k,l]\n");
}

#[test]
fn nrev_reverses_thirty_elements() {
    let out = output_of("nrev1");
    assert!(out.starts_with("[30,29,28"), "{out}");
    assert!(out.contains(",3,2,1]"), "{out}");
}

#[test]
fn qs4_sorts_the_fifty_element_list() {
    let out = output_of("qs4");
    // The standard list sorted (duplicates preserved).
    let mut expected = vec![
        27, 74, 17, 33, 94, 18, 46, 83, 65, 2, 32, 53, 28, 85, 99, 47, 28, 82, 6, 11, 55, 29, 39,
        81, 90, 37, 10, 0, 66, 51, 7, 21, 85, 27, 31, 63, 75, 4, 95, 99, 11, 28, 61, 74, 18, 92,
        40, 53, 59, 8,
    ];
    expected.sort_unstable();
    let want = format!(
        "[{}]\n",
        expected
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(out, want);
}

#[test]
fn pri2_finds_the_primes_to_98() {
    let out = output_of("pri2");
    let primes: Vec<u32> = (2..=98u32)
        .filter(|&n| (2..n).all(|d| n % d != 0))
        .collect();
    let want = format!(
        "[{}]\n",
        primes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(out, want);
}

#[test]
fn queens_solution_is_safe() {
    let out = output_of("queens");
    // Parse "[c1,c2,...]\n" — columns of queens per row (most recently
    // placed first).
    let cols: Vec<i32> = out
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .map(|s| s.parse().expect("column"))
        .collect();
    assert_eq!(cols.len(), 6);
    for i in 0..cols.len() {
        for j in i + 1..cols.len() {
            assert_ne!(cols[i], cols[j], "same column: {out}");
            assert_ne!(
                (cols[i] - cols[j]).abs(),
                (i as i32 - j as i32).abs(),
                "same diagonal: {out}"
            );
        }
    }
}

#[test]
fn hanoi_moves_every_disc() {
    let out = output_of("hanoi");
    // 2^8 - 1 moves, one line each.
    assert_eq!(out.lines().count(), 255);
}

#[test]
fn deriv_programs_produce_derivatives() {
    // times10: d/dx of x^10-as-products — the derivative mentions x and
    // both operators.
    let out = output_of("times10");
    assert!(out.contains('*') && out.contains('+'), "{out}");
    let out = output_of("log10");
    assert!(out.contains('/') && out.contains("log"), "{out}");
}

#[test]
fn query_lists_the_expected_country_pairs() {
    let out = output_of("query");
    // Every reported pair must satisfy the density predicate: D1 > D2 and
    // 20*D1 < 21*D2 (within 5%).
    let pairs: Vec<&str> = out.lines().filter(|l| !l.is_empty()).collect();
    assert!(!pairs.is_empty(), "query must find pairs");
    for line in &pairs {
        let inner = line.trim_start_matches('[').trim_end_matches(']');
        let parts: Vec<&str> = inner.split(',').collect();
        assert_eq!(parts.len(), 4, "{line}");
        let d1: i64 = parts[1].parse().expect("density 1");
        let d2: i64 = parts[3].parse().expect("density 2");
        assert!(d1 > d2, "{line}");
        assert!(20 * d1 < 21 * d2, "{line}");
    }
}

#[test]
fn mutest_proves_the_theorem() {
    assert_eq!(output_of("mutest"), "yes\n");
}

#[test]
fn palin25_serialises_the_palindrome() {
    let p = programs::program("palin25").expect("in suite");
    let m = run_program(&KcmEngine::new(), &p, Variant::Timed).expect("runs");
    assert!(m.outcome.success);
    // serialise maps each character to its rank among the distinct
    // characters: same character → same number, palindrome → palindromic
    // rank list.
    let out = m.outcome.output;
    let nums: Vec<&str> = out
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .collect();
    assert_eq!(nums.len(), 25);
    let rev: Vec<&str> = nums.iter().rev().copied().collect();
    assert_eq!(nums, rev, "palindrome ranks must be palindromic");
}
