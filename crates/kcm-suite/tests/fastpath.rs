//! The fast-path invariant, proved over the whole suite: the host-side
//! fast paths (fall-through dispatch, host TLB, last-line data-cache hit,
//! batched code fetch, reused unify stacks) are *speed-only*. Running
//! every benchmark with `MachineConfig::fast_paths` on and off must
//! produce the same bytes everywhere the simulation is observable:
//! solutions, output, [`RunStats`] (including the memory-system and
//! prefetch counters), the hardware-mechanism [`Profile`], and the
//! per-predicate cycle attribution — serially and across the session
//! pool.

use kcm_suite::programs;
use kcm_suite::runner::{run_suite_pooled, Variant};
use kcm_system::{Kcm, MachineConfig, SessionPool};

/// The two configurations under comparison: identical except for the
/// host-speed switch. Profiling is on so the per-address profile (the
/// flat-vector path) is exercised too.
fn configs() -> (MachineConfig, MachineConfig) {
    let fast = MachineConfig {
        profile: true,
        ..MachineConfig::default()
    };
    assert!(fast.fast_paths, "fast paths must default on");
    assert!(fast.mem.fast_paths, "memory fast paths must default on");
    let mut naive = fast.clone();
    naive.fast_paths = false;
    naive.mem.fast_paths = false;
    (fast, naive)
}

#[test]
fn fast_paths_are_byte_identical_over_the_full_suite() {
    let suite = programs::suite();
    let (fast_cfg, naive_cfg) = configs();
    for workers in [1usize, 4] {
        let pool = SessionPool::new(workers);
        let fast = run_suite_pooled(&suite, Variant::Timed, &fast_cfg, &pool);
        let naive = run_suite_pooled(&suite, Variant::Timed, &naive_cfg, &pool);
        for ((p, f), n) in suite.iter().zip(&fast).zip(&naive) {
            let f = f
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: fast run failed: {e}", p.name));
            let n = n
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: naive run failed: {e}", p.name));
            let (f, n) = (&f.outcome, &n.outcome);
            assert_eq!(f.success, n.success, "{}: success diverged", p.name);
            assert_eq!(f.solutions, n.solutions, "{}: solutions diverged", p.name);
            assert_eq!(f.output, n.output, "{}: output diverged", p.name);
            assert_eq!(
                f.stats, n.stats,
                "{} ({workers} workers): RunStats diverged",
                p.name
            );
            assert_eq!(
                f.stats.mem, n.stats.mem,
                "{} ({workers} workers): MemStats diverged",
                p.name
            );
            assert_eq!(
                f.profile, n.profile,
                "{} ({workers} workers): hardware profile diverged",
                p.name
            );
        }
    }
}

#[test]
fn fast_paths_preserve_the_predicate_profile() {
    // The per-predicate cycle attribution walks the flat per-address
    // profile vector (a fast-path refactor of its own); it must agree
    // with the naive interpreter for every program.
    let (fast_cfg, naive_cfg) = configs();
    for p in programs::suite() {
        let run = |cfg: &MachineConfig| {
            let mut kcm = Kcm::with_config(cfg.clone());
            kcm.load(p.source)
                .unwrap_or_else(|e| panic!("{}: consult: {e}", p.name));
            let (mut machine, vars) = kcm
                .prepare(p.query)
                .unwrap_or_else(|e| panic!("{}: prepare: {e}", p.name));
            machine
                .run_query(&vars, p.enumerate)
                .unwrap_or_else(|e| panic!("{}: run: {e}", p.name));
            machine.profile()
        };
        assert_eq!(
            run(&fast_cfg),
            run(&naive_cfg),
            "{}: per-predicate profile diverged",
            p.name
        );
    }
}

#[test]
fn reused_machines_stay_identical_across_runs() {
    // Fall-through hints, the host TLB and the last-line hint all carry
    // state from run to run; a second run on the same machine must still
    // match the naive interpreter exactly.
    let (fast_cfg, naive_cfg) = configs();
    let p = programs::program("nrev1").expect("nrev1 is in the suite");
    let run_twice = |cfg: &MachineConfig| {
        let mut kcm = Kcm::with_config(cfg.clone());
        kcm.load(p.source)
            .unwrap_or_else(|e| panic!("consult: {e}"));
        let (mut machine, vars) = kcm.prepare(p.query).unwrap_or_else(|e| panic!("{e}"));
        let first = machine.run_query(&vars, p.enumerate).expect("first run");
        let second = machine.run_query(&vars, p.enumerate).expect("second run");
        (first, second)
    };
    let (f1, f2) = run_twice(&fast_cfg);
    let (n1, n2) = run_twice(&naive_cfg);
    assert_eq!(f1.stats, n1.stats, "first run diverged");
    assert_eq!(f2.stats, n2.stats, "second run diverged");
    assert_eq!(f1.solutions, n1.solutions);
    assert_eq!(f2.solutions, n2.solutions);
    assert_eq!(f1.profile, n1.profile);
    assert_eq!(f2.profile, n2.profile);
}
