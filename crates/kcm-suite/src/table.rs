//! Plain-text table rendering for the regenerated evaluation tables.

/// A simple left-padded column table builder.
///
/// # Examples
///
/// ```
/// use kcm_suite::table::Table;
/// let mut t = Table::new(vec!["Program", "ms"]);
/// t.row(vec!["nrev1".into(), "0.651".into()]);
/// let text = t.render();
/// assert!(text.contains("nrev1"));
/// assert!(text.contains("ms"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A speedup/slowdown quotient that is always printable: `0.0` whenever
/// the denominator is zero or either operand is non-finite. Zero-cycle
/// runs (empty drivers, stubbed models) thus render as `0.00`, never as
/// `NaN` or `inf` in a published table.
pub fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 || !num.is_finite() || !den.is_finite() {
        return 0.0;
    }
    let q = num / den;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{:.3}", finite(v))
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{:.2}", finite(v))
}

/// Formats a float as an integer-looking Klips figure.
pub fn klips(v: f64) -> String {
    format!("{:.0}", finite(v))
}

/// Clamps non-finite values to `0.0` so every cell formatter emits a
/// number.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Geometric-free arithmetic mean of a series.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["xx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn ratio_never_produces_non_finite() {
        assert_eq!(ratio(6.0, 3.0), 2.0);
        assert_eq!(ratio(1.0, 0.0), 0.0);
        assert_eq!(ratio(0.0, 0.0), 0.0);
        assert_eq!(ratio(f64::NAN, 2.0), 0.0);
        assert_eq!(ratio(2.0, f64::INFINITY), 0.0);
        assert_eq!(ratio(f64::MAX, f64::MIN_POSITIVE), 0.0); // overflow to inf
    }

    #[test]
    fn formatters_render_zero_for_non_finite() {
        assert_eq!(f2(f64::NAN), "0.00");
        assert_eq!(f3(f64::INFINITY), "0.000");
        assert_eq!(klips(f64::NEG_INFINITY), "0");
        assert_eq!(f2(1.005), format!("{:.2}", 1.005));
    }
}
