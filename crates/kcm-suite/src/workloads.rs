//! Parameterized workload generators for sweeps beyond the fixed PLM
//! suite: scaled nrev/qsort inputs and N-queens boards, used by the
//! `scaling` bench to study how the memory system behaves as working sets
//! grow past the cache sections (the regime §3.2.4 worries about).

use kcm_testkit::TestRng;

/// A list literal `[x1,...,xn]`.
fn list_literal(xs: &[i32]) -> String {
    format!(
        "[{}]",
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// nrev over an `n`-element list: `(source, query)`.
pub fn nrev(n: usize) -> (String, String) {
    let xs: Vec<i32> = (1..=n as i32).collect();
    let source = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
    "
    .to_owned();
    (source, format!("nrev({}, _)", list_literal(&xs)))
}

/// qsort over `n` pseudo-random elements (deterministic seed): `(source,
/// query)`.
pub fn qsort(n: usize, seed: u64) -> (String, String) {
    let mut rng = TestRng::new(seed);
    let xs: Vec<i32> = (0..n).map(|_| rng.i32_in(0, 1000)).collect();
    let source = "
        qsort(L, R) :- qsort(L, R, []).
        qsort([], R, R).
        qsort([X|L], R, R0) :-
            partition(L, X, L1, L2),
            qsort(L2, R1, R0),
            qsort(L1, R, [X|R1]).
        partition([], _, [], []).
        partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
        partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
    "
    .to_owned();
    (source, format!("qsort({}, _)", list_literal(&xs)))
}

/// N-queens, first solution: `(source, query)`.
pub fn queens(n: usize) -> (String, String) {
    let source = "
        queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
        place([], Qs, Qs).
        place(Unplaced, Safe, Qs) :-
            selectq(Unplaced, Rest, Q),
            \\+ attack(Q, Safe),
            place(Rest, [Q|Safe], Qs).
        attack(X, Xs) :- attack(X, 1, Xs).
        attack(X, N, [Y|_]) :- X =:= Y + N.
        attack(X, N, [Y|_]) :- X =:= Y - N.
        attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
        selectq([X|Xs], Xs, X).
        selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
        range(N, N, [N]) :- !.
        range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
    "
    .to_owned();
    (source, format!("queens({n}, _)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcm_system::{Kcm, QueryOpts};

    #[test]
    fn generated_workloads_run() {
        for (source, query) in [nrev(12), qsort(16, 7), queens(5)] {
            let mut kcm = Kcm::new();
            kcm.load(&source).expect("consult");
            let o = kcm.query(&query, &QueryOpts::first()).expect("run");
            assert!(o.success, "{query}");
        }
    }

    #[test]
    fn qsort_workload_is_deterministic_per_seed() {
        assert_eq!(qsort(10, 3).1, qsort(10, 3).1);
        assert_ne!(qsort(10, 3).1, qsort(10, 4).1);
    }

    #[test]
    fn nrev_cost_grows_quadratically() {
        let mut cycles = Vec::new();
        for n in [8usize, 16, 32] {
            let (src, q) = nrev(n);
            let mut kcm = Kcm::new();
            kcm.load(&src).expect("consult");
            cycles.push(
                kcm.query(&q, &QueryOpts::first())
                    .expect("run")
                    .stats
                    .cycles as f64,
            );
        }
        // Doubling n should roughly 4x the cycles (within loose bounds —
        // the constant term flattens small sizes).
        let r1 = cycles[1] / cycles[0];
        let r2 = cycles[2] / cycles[1];
        assert!(r1 > 2.0 && r1 < 6.0, "{cycles:?}");
        assert!(r2 > 2.5 && r2 < 6.0, "{cycles:?}");
    }
}
