//! Compiling and running suite programs on any [`Engine`], serially or
//! fanned out across a [`SessionPool`].

use crate::programs::BenchProgram;
use kcm_system::{Engine, KcmEngine, KcmError, MachineConfig, Outcome, QueryOpts, SessionPool};

/// Which driver of a program to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The Table 2 driver (`main`, I/O as unit clauses).
    Timed,
    /// The Table 3 driver (`main_star`, I/O removed).
    Starred,
}

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Program name.
    pub name: &'static str,
    /// Which driver ran.
    pub variant: Variant,
    /// The run outcome with cycle-accurate statistics.
    pub outcome: Outcome,
}

impl Measurement {
    /// Milliseconds at the KCM clock.
    pub fn ms(&self) -> f64 {
        self.outcome.stats.ms()
    }

    /// Klips (§4.2 definition).
    pub fn klips(&self) -> f64 {
        self.outcome.stats.klips()
    }
}

/// Compiles and runs one suite program on any [`Engine`].
///
/// # Errors
///
/// Propagates parse/compile/machine errors. A program whose driver merely
/// fails (the failure-driven `query` loop ends in a final `main.` fact, so
/// none of the suite programs does) is not an error.
pub fn run_program(
    engine: &dyn Engine,
    program: &BenchProgram,
    variant: Variant,
) -> Result<Measurement, KcmError> {
    let goal = match variant {
        Variant::Timed => program.query,
        Variant::Starred => program.starred_query,
    };
    let opts = QueryOpts {
        enumerate_all: program.enumerate,
        ..QueryOpts::default()
    };
    let outcome = engine
        .run_case(program.source.into(), goal, &opts)
        .into_result()?;
    Ok(Measurement {
        name: program.name,
        variant,
        outcome,
    })
}

/// Compiles and runs one suite program on a fresh KCM machine.
///
/// # Errors
///
/// Same conditions as [`run_program`].
#[deprecated(since = "0.1.0", note = "use `run_program` with a `KcmEngine`")]
pub fn run_kcm(
    program: &BenchProgram,
    variant: Variant,
    config: &MachineConfig,
) -> Result<Measurement, KcmError> {
    run_program(&KcmEngine::with_config(config.clone()), program, variant)
}

/// Runs a list of suite programs across a [`SessionPool`], one session
/// per program. Results come back **in program order** whatever the
/// worker count, so table drivers produce byte-identical output whether
/// they run serially (1 worker) or on every core.
///
/// Each element is that program's result; a failing program does not
/// poison the others.
pub fn run_suite_pooled(
    programs: &[BenchProgram],
    variant: Variant,
    config: &MachineConfig,
    pool: &SessionPool,
) -> Vec<Result<Measurement, KcmError>> {
    let engine = KcmEngine::with_config(config.clone());
    pool.map(programs, |p| run_program(&engine, p, variant))
}

/// Static code sizes of many programs (see [`kcm_static_size`]), fanned
/// out across a [`SessionPool`], in program order.
pub fn static_sizes_pooled(
    programs: &[BenchProgram],
    pool: &SessionPool,
) -> Vec<Result<(usize, usize), KcmError>> {
    pool.map(programs, kcm_static_size)
}

/// Static code size of one compiled suite program, excluding the runtime
/// library and compiler-generated auxiliaries (the accounting of Table 1:
/// "the values indicated do not include the code of the runtime library").
///
/// Returns `(instructions, words)`.
///
/// # Errors
///
/// Propagates parse/compile errors.
pub fn kcm_static_size(program: &BenchProgram) -> Result<(usize, usize), KcmError> {
    let clauses = kcm_prolog::read_program(program.source).map_err(KcmError::Parse)?;
    let mut symbols = kcm_arch::SymbolTable::new();
    let image = kcm_compiler::compile_program(&clauses, &mut symbols)?;
    let mut instrs = 0;
    let mut words = 0;
    for s in image.sizes() {
        if s.auxiliary || s.id.name == "main_star" {
            continue;
        }
        instrs += s.instrs;
        words += s.words;
    }
    Ok((instrs, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn every_program_compiles() {
        for p in programs::suite() {
            kcm_static_size(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn starred_nrev_runs() {
        let p = programs::program("nrev1").unwrap();
        let m = run_program(&KcmEngine::new(), &p, Variant::Starred).unwrap();
        assert!(m.outcome.success);
        // nrev1 is about 500 inferences.
        assert!((400..700).contains(&(m.outcome.stats.inferences as i64)));
    }

    #[test]
    fn timed_variant_produces_output() {
        let p = programs::program("con1").unwrap();
        let m = run_program(&KcmEngine::new(), &p, Variant::Timed).unwrap();
        assert!(m.outcome.success);
        assert!(
            m.outcome.output.contains("[a,b,c,d,e,f]"),
            "{}",
            m.outcome.output
        );
        let s = run_program(&KcmEngine::new(), &p, Variant::Starred).unwrap();
        assert!(s.outcome.output.is_empty());
    }

    #[test]
    fn suite_runs_on_baseline_engines_too() {
        let p = programs::program("nrev1").unwrap();
        let kcm = run_program(&KcmEngine::new(), &p, Variant::Starred).unwrap();
        let plm = run_program(&plm::model(), &p, Variant::Starred).unwrap();
        assert_eq!(kcm.outcome.solutions, plm.outcome.solutions);
        assert!(plm.ms() > kcm.ms());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_kcm_still_matches() {
        let p = programs::program("nrev1").unwrap();
        let old = run_kcm(&p, Variant::Starred, &MachineConfig::default()).unwrap();
        let new = run_program(&KcmEngine::new(), &p, Variant::Starred).unwrap();
        assert_eq!(old.outcome.stats, new.outcome.stats);
    }
}
