//! The PLM benchmark suite and evaluation harness of the KCM reproduction.
//!
//! * [`programs`] — the fourteen PLM-suite programs (§4) with both the
//!   Table 2 (I/O as 5-cycle unit clauses) and Table 3 (I/O removed)
//!   drivers.
//! * [`paper`] — the published comparison columns the regenerated tables
//!   print alongside the model's measurements.
//! * [`runner`] — helpers that compile and execute a suite program on the
//!   KCM simulator and on the baselines, returning cycle-accurate
//!   measurements.
//! * [`table`] — plain-text table rendering shared by the bench targets.
//!
//! # Examples
//!
//! ```
//! use kcm_suite::{programs, runner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nrev = programs::program("nrev1").expect("in suite");
//! let kcm = kcm_system::KcmEngine::new();
//! let m = runner::run_program(&kcm, &nrev, runner::Variant::Starred)?;
//! assert!(m.outcome.success);
//! assert!(m.outcome.stats.klips() > 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod paper;
pub mod programs;
pub mod runner;
pub mod table;
pub mod workloads;

pub use programs::{program, suite, BenchProgram};
#[allow(deprecated)]
pub use runner::run_kcm;
pub use runner::{run_program, Measurement, Variant};
