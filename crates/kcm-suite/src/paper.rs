//! Published numbers from the paper's evaluation tables.
//!
//! The reproduction *measures* every KCM column itself; the comparison
//! columns that the paper itself took from the literature (PLM and SPUR
//! static sizes from Borriello et al. 1987; PLM timings from Dobry et al.
//! 1985; Quintus timings measured by the authors on a SUN3/280; the peak
//! Klips of the other machines in Table 4) are kept here as the reference
//! values the regenerated tables print alongside our own model's output.

/// One Table 1 row as printed in the paper (static code sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Program name.
    pub program: &'static str,
    /// PLM instruction count.
    pub plm_instr: u32,
    /// PLM code bytes.
    pub plm_bytes: u32,
    /// SPUR instruction count.
    pub spur_instr: u32,
    /// SPUR code bytes.
    pub spur_bytes: u32,
    /// KCM instruction count (the paper's own measurement, for
    /// comparison with ours).
    pub kcm_instr: u32,
    /// KCM code words.
    pub kcm_words: u32,
}

/// Table 1 of the paper.
pub const TABLE1: [Table1Row; 14] = [
    Table1Row {
        program: "con1",
        plm_instr: 28,
        plm_bytes: 87,
        spur_instr: 414,
        spur_bytes: 1656,
        kcm_instr: 33,
        kcm_words: 31,
    },
    Table1Row {
        program: "con6",
        plm_instr: 32,
        plm_bytes: 106,
        spur_instr: 430,
        spur_bytes: 1720,
        kcm_instr: 39,
        kcm_words: 41,
    },
    Table1Row {
        program: "divide10",
        plm_instr: 213,
        plm_bytes: 661,
        spur_instr: 3988,
        spur_bytes: 15952,
        kcm_instr: 214,
        kcm_words: 234,
    },
    Table1Row {
        program: "hanoi",
        plm_instr: 52,
        plm_bytes: 183,
        spur_instr: 385,
        spur_bytes: 1540,
        kcm_instr: 56,
        kcm_words: 59,
    },
    Table1Row {
        program: "log10",
        plm_instr: 207,
        plm_bytes: 625,
        spur_instr: 4040,
        spur_bytes: 16160,
        kcm_instr: 198,
        kcm_words: 208,
    },
    Table1Row {
        program: "mutest",
        plm_instr: 141,
        plm_bytes: 468,
        spur_instr: 1703,
        spur_bytes: 6812,
        kcm_instr: 162,
        kcm_words: 172,
    },
    Table1Row {
        program: "nrev1",
        plm_instr: 71,
        plm_bytes: 260,
        spur_instr: 761,
        spur_bytes: 3044,
        kcm_instr: 64,
        kcm_words: 70,
    },
    Table1Row {
        program: "ops8",
        plm_instr: 205,
        plm_bytes: 633,
        spur_instr: 3804,
        spur_bytes: 15216,
        kcm_instr: 206,
        kcm_words: 216,
    },
    Table1Row {
        program: "palin25",
        plm_instr: 178,
        plm_bytes: 565,
        spur_instr: 2556,
        spur_bytes: 10224,
        kcm_instr: 230,
        kcm_words: 240,
    },
    Table1Row {
        program: "pri2",
        plm_instr: 132,
        plm_bytes: 383,
        spur_instr: 1933,
        spur_bytes: 7732,
        kcm_instr: 141,
        kcm_words: 151,
    },
    Table1Row {
        program: "qs4",
        plm_instr: 121,
        plm_bytes: 456,
        spur_instr: 1230,
        spur_bytes: 4920,
        kcm_instr: 184,
        kcm_words: 192,
    },
    Table1Row {
        program: "queens",
        plm_instr: 242,
        plm_bytes: 723,
        spur_instr: 3636,
        spur_bytes: 14544,
        kcm_instr: 212,
        kcm_words: 224,
    },
    Table1Row {
        program: "query",
        plm_instr: 273,
        plm_bytes: 1138,
        spur_instr: 3942,
        spur_bytes: 15768,
        kcm_instr: 305,
        kcm_words: 357,
    },
    Table1Row {
        program: "times10",
        plm_instr: 213,
        plm_bytes: 661,
        spur_instr: 3988,
        spur_bytes: 15952,
        kcm_instr: 214,
        kcm_words: 224,
    },
];

/// One Table 2 row (PLM vs KCM execution times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Program name.
    pub program: &'static str,
    /// Inference count the paper reports.
    pub inferences: u32,
    /// PLM time in milliseconds (simulated, Dobry et al.).
    pub plm_ms: f64,
    /// KCM time in milliseconds (the paper's measurement).
    pub kcm_ms: f64,
    /// The paper's PLM/KCM ratio.
    pub ratio: f64,
}

/// Table 2 of the paper.
pub const TABLE2: [Table2Row; 14] = [
    Table2Row {
        program: "con1",
        inferences: 6,
        plm_ms: 0.023,
        kcm_ms: 0.007,
        ratio: 3.29,
    },
    Table2Row {
        program: "con6",
        inferences: 42,
        plm_ms: 0.137,
        kcm_ms: 0.059,
        ratio: 2.32,
    },
    Table2Row {
        program: "divide10",
        inferences: 22,
        plm_ms: 0.380,
        kcm_ms: 0.091,
        ratio: 4.18,
    },
    Table2Row {
        program: "hanoi",
        inferences: 1787,
        plm_ms: 7.323,
        kcm_ms: 2.795,
        ratio: 2.62,
    },
    Table2Row {
        program: "log10",
        inferences: 14,
        plm_ms: 0.109,
        kcm_ms: 0.039,
        ratio: 2.79,
    },
    Table2Row {
        program: "mutest",
        inferences: 1365,
        plm_ms: 12.407,
        kcm_ms: 4.644,
        ratio: 2.67,
    },
    Table2Row {
        program: "nrev1",
        inferences: 499,
        plm_ms: 2.660,
        kcm_ms: 0.650,
        ratio: 4.09,
    },
    Table2Row {
        program: "ops8",
        inferences: 20,
        plm_ms: 0.214,
        kcm_ms: 0.059,
        ratio: 3.63,
    },
    Table2Row {
        program: "palin25",
        inferences: 325,
        plm_ms: 3.152,
        kcm_ms: 1.221,
        ratio: 2.58,
    },
    Table2Row {
        program: "pri2",
        inferences: 1235,
        plm_ms: 10.000,
        kcm_ms: 5.240,
        ratio: 1.91,
    },
    Table2Row {
        program: "qs4",
        inferences: 612,
        plm_ms: 4.854,
        kcm_ms: 1.316,
        ratio: 3.69,
    },
    Table2Row {
        program: "queens",
        inferences: 687,
        plm_ms: 4.222,
        kcm_ms: 1.205,
        ratio: 3.50,
    },
    Table2Row {
        program: "query",
        inferences: 2893,
        plm_ms: 17.342,
        kcm_ms: 12.610,
        ratio: 1.38,
    },
    Table2Row {
        program: "times10",
        inferences: 22,
        plm_ms: 0.330,
        kcm_ms: 0.082,
        ratio: 4.02,
    },
];

/// One Table 3 row (Quintus 2.0 on SUN3/280 vs KCM, I/O removed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Program name (the paper writes them starred).
    pub program: &'static str,
    /// Inference count the paper reports.
    pub inferences: u32,
    /// Quintus time in ms; `None` where the program was "too small to get
    /// significant results".
    pub quintus_ms: Option<f64>,
    /// KCM time in ms (the paper's measurement).
    pub kcm_ms: f64,
    /// The paper's Quintus/KCM ratio where reported.
    pub ratio: Option<f64>,
}

/// Table 3 of the paper.
pub const TABLE3: [Table3Row; 14] = [
    Table3Row {
        program: "con1",
        inferences: 4,
        quintus_ms: None,
        kcm_ms: 0.006,
        ratio: None,
    },
    Table3Row {
        program: "con6",
        inferences: 12,
        quintus_ms: None,
        kcm_ms: 0.046,
        ratio: None,
    },
    Table3Row {
        program: "divide10",
        inferences: 20,
        quintus_ms: None,
        kcm_ms: 0.090,
        ratio: None,
    },
    Table3Row {
        program: "hanoi",
        inferences: 767,
        quintus_ms: Some(11.600),
        kcm_ms: 1.264,
        ratio: Some(9.18),
    },
    Table3Row {
        program: "log10",
        inferences: 12,
        quintus_ms: None,
        kcm_ms: 0.039,
        ratio: None,
    },
    Table3Row {
        program: "mutest",
        inferences: 1365,
        quintus_ms: Some(41.500),
        kcm_ms: 4.644,
        ratio: Some(8.94),
    },
    Table3Row {
        program: "nrev1",
        inferences: 497,
        quintus_ms: Some(3.300),
        kcm_ms: 0.649,
        ratio: Some(5.08),
    },
    Table3Row {
        program: "ops8",
        inferences: 18,
        quintus_ms: None,
        kcm_ms: 0.058,
        ratio: None,
    },
    Table3Row {
        program: "palin25",
        inferences: 323,
        quintus_ms: Some(9.330),
        kcm_ms: 1.220,
        ratio: Some(7.65),
    },
    Table3Row {
        program: "pri2",
        inferences: 1233,
        quintus_ms: Some(30.500),
        kcm_ms: 5.239,
        ratio: Some(5.82),
    },
    Table3Row {
        program: "qs4",
        inferences: 610,
        quintus_ms: Some(11.000),
        kcm_ms: 1.315,
        ratio: Some(8.37),
    },
    Table3Row {
        program: "queens",
        inferences: 657,
        quintus_ms: Some(9.010),
        kcm_ms: 1.182,
        ratio: Some(7.62),
    },
    Table3Row {
        program: "query",
        inferences: 2888,
        quintus_ms: Some(128.170),
        kcm_ms: 12.605,
        ratio: Some(10.17),
    },
    Table3Row {
        program: "times10",
        inferences: 20,
        quintus_ms: None,
        kcm_ms: 0.081,
        ratio: None,
    },
];

/// One Table 4 row (peak performance of dedicated Prolog machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// Machine name.
    pub machine: &'static str,
    /// Builder.
    pub by: &'static str,
    /// Peak Klips on list concatenation (`None` = not reported).
    pub concat_klips: Option<u32>,
    /// Peak Klips on naive reverse (`None` = not reported).
    pub nrev_klips: Option<u32>,
    /// Word width in bits.
    pub word_bits: u32,
    /// The paper's comment column.
    pub comment: &'static str,
}

/// Table 4 of the paper (KCM's row is regenerated by measurement; the
/// others are quoted from the literature, as the paper itself does).
pub const TABLE4: [Table4Row; 7] = [
    Table4Row {
        machine: "CHI-II",
        by: "NEC C&C",
        concat_klips: Some(490),
        nrev_klips: None,
        word_bits: 40,
        comment: "Back-end - multi-processing",
    },
    Table4Row {
        machine: "DLM-1",
        by: "BAe",
        concat_klips: Some(800),
        nrev_klips: None,
        word_bits: 38,
        comment: "Back-end - physical memory",
    },
    Table4Row {
        machine: "IPP",
        by: "Hitachi",
        concat_klips: Some(1360),
        nrev_klips: Some(1197),
        word_bits: 32,
        comment: "Integrated in super-mini (ECL)",
    },
    Table4Row {
        machine: "AIP",
        by: "Toshiba",
        concat_klips: None,
        nrev_klips: Some(620),
        word_bits: 32,
        comment: "Back-end",
    },
    Table4Row {
        machine: "KCM",
        by: "ECRC",
        concat_klips: Some(833),
        nrev_klips: Some(760),
        word_bits: 64,
        comment: "Back-end",
    },
    Table4Row {
        machine: "PSI-II",
        by: "ICOT",
        concat_klips: Some(400),
        nrev_klips: Some(320),
        word_bits: 40,
        comment: "Stand-alone - multi-processing",
    },
    Table4Row {
        machine: "X-1",
        by: "Xenologic",
        concat_klips: Some(400),
        nrev_klips: None,
        word_bits: 32,
        comment: "SUN co-processor",
    },
];

/// The paper's headline averages.
pub mod averages {
    /// Average KCM/PLM static instruction ratio (Table 1).
    pub const T1_KCM_PLM_INSTR: f64 = 1.10;
    /// Average KCM/PLM static byte ratio (Table 1).
    pub const T1_KCM_PLM_BYTES: f64 = 2.96;
    /// Average SPUR/KCM static instruction ratio (Table 1).
    pub const T1_SPUR_KCM_INSTR: f64 = 13.61;
    /// Average SPUR/KCM static byte ratio (Table 1).
    pub const T1_SPUR_KCM_BYTES: f64 = 6.43;
    /// Average PLM/KCM time ratio (Table 2).
    pub const T2_PLM_KCM: f64 = 3.05;
    /// Average Quintus/KCM time ratio (Table 3).
    pub const T3_QUINTUS_KCM: f64 = 7.85;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_the_whole_suite() {
        let names: Vec<&str> = crate::programs::suite().iter().map(|p| p.name).collect();
        for row in TABLE1 {
            assert!(names.contains(&row.program), "{} missing", row.program);
        }
        for row in TABLE2 {
            assert!(names.contains(&row.program), "{} missing", row.program);
        }
        for row in TABLE3 {
            assert!(names.contains(&row.program), "{} missing", row.program);
        }
    }

    #[test]
    fn paper_ratios_are_consistent() {
        for row in TABLE2 {
            let ratio = row.plm_ms / row.kcm_ms;
            assert!(
                (ratio - row.ratio).abs() < 0.35,
                "{}: {ratio} vs {}",
                row.program,
                row.ratio
            );
        }
        for row in TABLE3 {
            if let (Some(q), Some(r)) = (row.quintus_ms, row.ratio) {
                let ratio = q / row.kcm_ms;
                assert!((ratio - r).abs() < 0.35, "{}: {ratio} vs {r}", row.program);
            }
        }
    }

    #[test]
    fn kcm_row_in_table4_matches_abstract() {
        let kcm = TABLE4.iter().find(|r| r.machine == "KCM").unwrap();
        assert_eq!(kcm.concat_klips, Some(833));
        assert_eq!(kcm.word_bits, 64);
    }
}
