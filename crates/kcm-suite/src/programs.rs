//! The PLM benchmark suite (paper §4).
//!
//! "This suite was gathered by the PLM team at U.C. Berkeley in order to
//! evaluate the performance of the PLM. It is an extension of the initial
//! set of benchmarks written by D.H.D. Warren." The sources below follow
//! the classical texts. Every program has two drivers:
//!
//! * `main` — the Table 2 configuration: I/O predicates report the result
//!   (they cost 5 cycles each, compiled as unit clauses, §4.2);
//! * `main_star` — the Table 3 configuration: "all the I/O predicates
//!   (used to print the solutions) have been removed in order to measure
//!   the pure inferencing capabilities".
//!
//! The `boyer`-style program needing assert/retract is omitted exactly as
//! the paper omits it ("this library did not include any assert/retract
//! facilities which made it impossible to run one of the programs").

/// One benchmark program of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchProgram {
    /// Program name as it appears in the paper's tables.
    pub name: &'static str,
    /// Complete Prolog source including both drivers.
    pub source: &'static str,
    /// The Table 2 driver goal.
    pub query: &'static str,
    /// The Table 3 (I/O-free) driver goal.
    pub starred_query: &'static str,
    /// Whether the driver enumerates all solutions by backtracking.
    pub enumerate: bool,
}

/// Shared list-append used by several programs.
const APPEND: &str = "
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
";

/// `con1` — one short list concatenation (the paper's peak-Klips program).
pub const CON1: BenchProgram = BenchProgram {
    name: "con1",
    source: "
main :- con([a, b, c, d, e], [f], X), write(X), nl.
main_star :- con([a, b, c, d, e], [f], _).
con([], L, L).
con([H|T], L, [H|R]) :- con(T, L, R).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `con6` — six concatenations of six-element lists.
pub const CON6: BenchProgram = BenchProgram {
    name: "con6",
    source: "
main :- run6(X), write(X), nl.
main_star :- run6(_).
run6(X6) :-
    con([a, b, c, d, e, f], [g], X1),
    con(X1, [h], X2),
    con(X2, [i], X3),
    con(X3, [j], X4),
    con(X4, [k], X5),
    con(X5, [l], X6).
con([], L, L).
con([H|T], L, [H|R]) :- con(T, L, R).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// Warren's symbolic differentiation rules, shared by four benchmarks.
const DERIV_RULES: &str = "
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
";

/// `times10` — differentiate a tenfold product.
pub const TIMES10: BenchProgram = BenchProgram {
    name: "times10",
    source: const_format_times10(),
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

const fn const_format_times10() -> &'static str {
    // (Rust has no const string concat for arbitrary consts; the source is
    // written out with the shared rules inlined.)
    "
main :- d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, D), write(D), nl.
main_star :- d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, _).
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
"
}

/// `divide10` — differentiate a tenfold quotient.
pub const DIVIDE10: BenchProgram = BenchProgram {
    name: "divide10",
    source: "
main :- d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, D), write(D), nl.
main_star :- d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, _).
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `log10` — differentiate a tenfold logarithm.
pub const LOG10: BenchProgram = BenchProgram {
    name: "log10",
    source: "
main :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, D), write(D), nl.
main_star :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _).
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `ops8` — differentiate an eight-operator expression.
pub const OPS8: BenchProgram = BenchProgram {
    name: "ops8",
    source: "
main :- d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, D), write(D), nl.
main_star :- d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, _).
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `hanoi` — towers of Hanoi, 8 discs. The unstarred driver reports each
/// move (the paper notes hanoi is the benchmark most affected by the I/O
/// costing assumption).
pub const HANOI: BenchProgram = BenchProgram {
    name: "hanoi",
    source: "
main :- move(8, left, centre, right).
main_star :- move_star(8, left, centre, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N - 1,
    move(M, A, C, B),
    inform(A, B),
    move(M, C, B, A).
inform(A, B) :- write(A), write(B), nl.
move_star(0, _, _, _) :- !.
move_star(N, A, B, C) :-
    M is N - 1,
    move_star(M, A, C, B),
    move_star(M, C, B, A).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `mutest` — Hofstadter's MU puzzle: derive `muiiu` from `mi`.
pub const MUTEST: BenchProgram = BenchProgram {
    name: "mutest",
    source: "
main :- theorem(5, [m, u, i, i, u]), write(yes), nl.
main_star :- theorem(5, [m, u, i, i, u]).
theorem(_, [m, i]).
theorem(Depth, R) :-
    Depth > 0,
    D is Depth - 1,
    theorem(D, S),
    rules(S, R).
rules(S, R) :- rule1(S, R).
rules(S, R) :- rule2(S, R).
rules(S, R) :- rule3(S, R).
rules(S, R) :- rule4(S, R).
rule1(S, R) :- append(X, [i], S), append(X, [i, u], R).
rule2([m|T], [m|R]) :- append(T, T, R).
rule3(S, R) :- append(X, [i, i, i|Y], S), append(X, [u|Y], R).
rule4(S, R) :- append(X, [u, u|Y], S), append(X, Y, R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `nrev1` — naive reverse of a 30-element list.
pub const NREV1: BenchProgram = BenchProgram {
    name: "nrev1",
    source: "
main :- nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], R),
        write(R), nl.
main_star :- nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], _).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `palin25` — Warren's `serialise` on the 25-character palindrome.
pub const PALIN25: BenchProgram = BenchProgram {
    name: "palin25",
    source: "
main :- serialise(\"ABLE WAS I ERE I SAW ELBA\", R), write(R), nl.
main_star :- serialise(\"ABLE WAS I ERE I SAW ELBA\", _).
serialise(L, R) :- pairlists(L, R, A), arrange(A, T), numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X, Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1, _), pair(X2, _)) :- X1 < X2.
numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `pri2` — primes up to 98 by trial-division sieve.
pub const PRI2: BenchProgram = BenchProgram {
    name: "pri2",
    source: "
main :- primes(98, Ps), write(Ps), nl.
main_star :- primes(98, _).
primes(Limit, Ps) :- integers(2, Limit, Is), sift(Is, Ps).
integers(Low, High, [Low|Rest]) :- Low =< High, !, M is Low + 1, integers(M, High, Rest).
integers(_, _, []).
sift([], []).
sift([I|Is], [I|Ps]) :- remove(I, Is, New), sift(New, Ps).
remove(_, [], []).
remove(P, [I|Is], Nis) :- 0 is I mod P, !, remove(P, Is, Nis).
remove(P, [I|Is], [I|Nis]) :- remove(P, Is, Nis).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `qs4` — quicksort of the standard 50-element list (the classical
/// difference-list formulation, which is what keeps the PLM suite's
/// inference count near 600).
pub const QS4: BenchProgram = BenchProgram {
    name: "qs4",
    source: "
main :- qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
               55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
               11,28,61,74,18,92,40,53,59,8], R), write(R), nl.
main_star :- qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
                    55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
                    11,28,61,74,18,92,40,53,59,8], _).
qsort(L, R) :- qsort(L, R, []).
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `queens` — the N-queens problem, first solution on a 6×6 board
/// (sized so the search effort matches the paper's reported inference
/// count for its `queens` program).
pub const QUEENS: BenchProgram = BenchProgram {
    name: "queens",
    source: "
main :- queens(6, Qs), write(Qs), nl.
main_star :- queens(6, _).
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    selectq(Unplaced, Rest, Q),
    \\+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack(X, 1, Xs).
attack(X, N, [Y|_]) :- X =:= Y + N.
attack(X, N, [Y|_]) :- X =:= Y - N.
attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
selectq([X|Xs], Xs, X).
selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// `query` — Warren's database query: country pairs with close population
/// densities, all solutions by failure-driven backtracking.
pub const QUERY: BenchProgram = BenchProgram {
    name: "query",
    source: "
main :- q(S), write(S), nl, fail.
main.
main_star :- q(_), fail.
main_star.
q([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    T1 is 20 * D1,
    T2 is 21 * D2,
    T1 < T2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china, 8250).      area(china, 3380).
pop(india, 5863).      area(india, 1139).
pop(ussr, 2521).       area(ussr, 8708).
pop(usa, 2119).        area(usa, 3609).
pop(indonesia, 1276).  area(indonesia, 570).
pop(japan, 1097).      area(japan, 148).
pop(brazil, 1042).     area(brazil, 3288).
pop(bangladesh, 750).  area(bangladesh, 55).
pop(pakistan, 682).    area(pakistan, 311).
pop(w_germany, 620).   area(w_germany, 96).
pop(nigeria, 613).     area(nigeria, 373).
pop(mexico, 581).      area(mexico, 764).
pop(uk, 559).          area(uk, 86).
pop(italy, 554).       area(italy, 116).
pop(france, 525).      area(france, 213).
pop(philippines, 415). area(philippines, 90).
pop(thailand, 410).    area(thailand, 200).
pop(turkey, 383).      area(turkey, 296).
pop(egypt, 364).       area(egypt, 386).
pop(spain, 352).       area(spain, 190).
pop(poland, 337).      area(poland, 121).
pop(s_korea, 335).     area(s_korea, 37).
pop(iran, 320).        area(iran, 628).
pop(ethiopia, 272).    area(ethiopia, 350).
pop(argentina, 251).   area(argentina, 1080).
",
    query: "main",
    starred_query: "main_star",
    enumerate: false,
};

/// The complete suite in the order of the paper's tables.
pub fn suite() -> Vec<BenchProgram> {
    vec![
        CON1, CON6, DIVIDE10, HANOI, LOG10, MUTEST, NREV1, OPS8, PALIN25, PRI2, QS4, QUEENS, QUERY,
        TIMES10,
    ]
}

/// Finds a suite program by its table name.
pub fn program(name: &str) -> Option<BenchProgram> {
    suite().into_iter().find(|p| p.name == name)
}

/// The shared `append/3` text, exposed for examples and tests.
pub fn append_source() -> &'static str {
    APPEND
}

#[allow(dead_code)]
const _KEEP: &str = DERIV_RULES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_programs_in_table_order() {
        let names: Vec<&str> = suite().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 14);
        assert_eq!(names[0], "con1");
        assert_eq!(names[13], "times10");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "paper tables list programs alphabetically");
    }

    #[test]
    fn every_program_has_both_drivers() {
        for p in suite() {
            assert!(p.source.contains("main"), "{}", p.name);
            assert!(p.source.contains("main_star"), "{}", p.name);
            assert_eq!(p.query, "main");
            assert_eq!(p.starred_query, "main_star");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(program("nrev1").is_some());
        assert!(program("boyer").is_none(), "assert/retract program omitted");
    }

    #[test]
    fn sources_parse() {
        for p in suite() {
            kcm_prolog::read_program(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }
}
