//! Loopback integration tests: a real `Server` on an ephemeral port,
//! real TCP clients, and the acceptance criteria of the serve tentpole —
//! byte-identity with direct [`Kcm`] execution, explicit `BUSY`
//! backpressure, and step-budget stops that don't poison the connection.

use kcm_serve::protocol::render_outcome;
use kcm_serve::workload::standard;
use kcm_serve::{Client, Reply, Request, ServeConfig, Server};
use kcm_system::{Kcm, QueryOpts, Tier};
use std::net::SocketAddr;
use std::sync::Barrier;

fn spawn_server(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<kcm_serve::ServeMetrics>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

/// What a direct (in-process, no server) run of the same case renders
/// to. The server serves on the native tier by default and the rendered
/// body includes the cycle counter, so byte-identity means comparing
/// against a direct run at the same tier.
fn direct_body(source: &str, query: &str, enumerate_all: bool) -> String {
    let mut kcm = Kcm::new();
    kcm.load(source).expect("consult");
    let opts = QueryOpts {
        enumerate_all,
        tier: Tier::Native,
        ..QueryOpts::default()
    };
    render_outcome(&kcm.query(query, &opts).expect("query"))
}

#[test]
fn four_interleaved_clients_get_answers_identical_to_direct_runs() {
    // 4 concurrent connections, each consulting its own disjoint program
    // and interleaving consults with queries; every served answer must be
    // byte-identical to the direct Kcm rendering.
    let (addr, server) = spawn_server(ServeConfig::default());
    let programs: [(&str, &str, &str); 4] = [
        ("p(1). p(2). p(3).", "p(X)", "alpha"),
        (
            "q(a, b). q(b, c). path(X, Y) :- q(X, Y).",
            "path(X, Y)",
            "beta",
        ),
        ("r(N, M) :- M is N * N.", "r(7, M)", "gamma"),
        (
            "s([], 0). s([_|T], N) :- s(T, M), N is M + 1.",
            "s([a,b,c,d], N)",
            "delta",
        ),
    ];
    let barrier = Barrier::new(programs.len());
    std::thread::scope(|scope| {
        for (source, query, who) in programs {
            let barrier = &barrier;
            scope.spawn(move || {
                let want = direct_body(source, query, true);
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                for round in 0..5 {
                    // Re-consulting mid-stream must not disturb other
                    // connections (program state is per-connection).
                    assert!(
                        client.consult(source).expect("consult").is_ok(),
                        "{who}: consult round {round}"
                    );
                    match client.query_all(query).expect("query") {
                        Reply::Ok { body } => {
                            assert_eq!(body, want, "{who}: round {round} diverged from direct run")
                        }
                        other => panic!("{who}: round {round} answered {other:?}"),
                    }
                }
            });
        }
    });
    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.served, 20, "4 clients x 5 rounds all served");
    assert_eq!(metrics.errors, 0);
}

#[test]
fn served_suite_workload_is_byte_identical_to_direct_runs() {
    // The acceptance load: 4 connections x 50 queries over the standard
    // suite workload, every reply byte-identical to the direct rendering.
    let (addr, server) = spawn_server(ServeConfig::default());
    let cases = standard();
    let direct: Vec<String> = cases
        .iter()
        .map(|c| direct_body(c.source, c.query, c.enumerate_all))
        .collect();
    std::thread::scope(|scope| {
        for conn in 0..4 {
            let cases = &cases;
            let direct = &direct;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..50 {
                    let ix = (conn + i) % cases.len();
                    let case = &cases[ix];
                    assert!(client.consult(case.source).expect("consult").is_ok());
                    let request = Request::Query {
                        tenant: None,
                        query: case.query.to_owned(),
                        enumerate_all: case.enumerate_all,
                        step_budget: None,
                        cursor: false,
                    };
                    match client.request(&request).expect("query") {
                        Reply::Ok { body } => assert_eq!(
                            body, direct[ix],
                            "{}: served answer differs from direct run",
                            case.name
                        ),
                        other => panic!("{}: answered {other:?}", case.name),
                    }
                }
            });
        }
    });
    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.served, 200);
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.busy, 0, "default queue depth must absorb 4 clients");
}

#[test]
fn full_queue_answers_busy_instead_of_queueing() {
    // One worker, queue depth one: of 5 simultaneous slow queries, one
    // runs, one queues, and the rest must be told BUSY immediately.
    let (addr, server) = spawn_server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    const CLIENTS: usize = 5;
    let barrier = Barrier::new(CLIENTS);
    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    assert!(client.consult("loop :- loop.").expect("consult").is_ok());
                    // Budget-capped so the occupied worker frees itself;
                    // big enough to hold the worker while 5 requests land.
                    let request = Request::Query {
                        tenant: None,
                        query: "loop".to_owned(),
                        enumerate_all: false,
                        step_budget: Some(2_000_000),
                        cursor: false,
                    };
                    barrier.wait();
                    client.request(&request).expect("query")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let busy = replies.iter().filter(|r| matches!(r, Reply::Busy)).count();
    let budget = replies
        .iter()
        .filter(|r| matches!(r, Reply::Err { class, .. } if class == "budget"))
        .count();
    assert_eq!(
        busy + budget,
        CLIENTS,
        "every reply is BUSY or a budget stop: {replies:?}"
    );
    assert!(busy >= 1, "a full queue must reject at least one request");
    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.busy, busy as u64);
    assert_eq!(metrics.budget_stops, budget as u64);
}

#[test]
fn budget_stop_does_not_poison_the_connection_for_the_next_request() {
    // A runaway query hits its per-request deadline with a clean `budget`
    // class; the same connection then gets a correct answer, proving the
    // worker session state didn't leak across requests.
    let (addr, server) = spawn_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .consult("loop :- loop. ok(42).")
        .expect("consult")
        .is_ok());
    let runaway = Request::Query {
        tenant: None,
        query: "loop".to_owned(),
        enumerate_all: false,
        step_budget: Some(10_000),
        cursor: false,
    };
    match client.request(&runaway).expect("runaway") {
        Reply::Err { class, message } => {
            assert_eq!(class, "budget", "{message}");
            assert!(message.contains("step budget"), "{message}");
        }
        other => panic!("runaway answered {other:?}"),
    }
    // Same connection, same (sole) worker: the next query must be clean.
    match client.query("ok(X)").expect("query") {
        Reply::Ok { body } => {
            assert_eq!(body, direct_body("loop :- loop. ok(42).", "ok(X)", false));
            assert!(body.contains("X=42"), "{body}");
        }
        other => panic!("follow-up answered {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.contains("budget_stops=1"), "{stats}");
    assert!(stats.contains("served=1"), "{stats}");
    client.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.budget_stops, 1);
    assert_eq!(metrics.served, 1);
    assert_eq!(metrics.errors, 0);
}

#[test]
fn malformed_budget_counts_get_protocol_errors_on_the_wire() {
    // Every BUDGET malformation must come back as a classed protocol
    // error — not a silently-defaulted run, not an immediately-exhausted
    // run, not a dropped connection.
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.consult("ok(42).").expect("consult").is_ok());
    for bad in [
        "QUERYALL BUDGET 0 ok(X)",
        "QUERY BUDGET +5 ok(X)",
        "QUERY BUDGET 5x ok(X)",
        "QUERY BUDGET 99999999999999999999999999 ok(X)",
        "QUERY BUDGET 5",
    ] {
        match client.request_raw(bad).expect("raw request") {
            Reply::Err { class, message } => {
                assert_eq!(
                    class, "protocol",
                    "{bad:?} answered class {class}: {message}"
                )
            }
            other => panic!("{bad:?} answered {other:?}"),
        }
    }
    // The connection survives the rejections, and the smallest legal
    // budget is accepted as a real (if tiny) deadline.
    match client.request_raw("QUERY BUDGET 1 ok(X)").expect("raw") {
        Reply::Err { class, .. } => assert_eq!(class, "budget"),
        other => panic!("BUDGET 1 answered {other:?}"),
    }
    match client.query("ok(X)").expect("query") {
        Reply::Ok { body } => assert!(body.contains("X=42"), "{body}"),
        other => panic!("follow-up answered {other:?}"),
    }
    client.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.served, 1);
    assert_eq!(metrics.budget_stops, 1);
    // Protocol rejections never reach the query pipeline, so they are
    // not counted as engine errors.
    assert_eq!(metrics.errors, 0);
}

#[test]
fn cycle_tier_config_still_reports_simulated_cycles() {
    // The cycle simulator stays available behind a config knob for
    // fidelity runs: served answers then carry nonzero cycle counts and
    // the STATS aggregate accumulates them.
    let (addr, server) = spawn_server(ServeConfig {
        tier: Tier::Cycle,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.consult("p(1). p(2).").expect("consult").is_ok());
    match client.query_all("p(X)").expect("query") {
        Reply::Ok { body } => {
            let mut kcm = Kcm::new();
            kcm.load("p(1). p(2).").expect("consult");
            let want = render_outcome(&kcm.query("p(X)", &QueryOpts::all()).expect("direct query"));
            assert_eq!(body, want, "cycle-tier serving diverged from direct run");
            assert!(!body.contains("cycles=0"), "{body}");
        }
        other => panic!("answered {other:?}"),
    }
    client.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert!(metrics.cycles > 0, "{metrics:?}");
}

#[test]
fn tenant_inflight_cap_keeps_a_saturating_tenant_from_starving_others() {
    // Tenant A's sole in-flight slot is pinned by a long budget-capped
    // query. With two workers and a deep queue, the cap — not queue
    // backpressure — must turn A's second query away immediately, while
    // tenant B's queries keep being answered the whole time.
    let (addr, server) = spawn_server(ServeConfig {
        workers: 2,
        queue_depth: 64,
        tenant_inflight_cap: Some(1),
        ..ServeConfig::default()
    });
    let mut publisher = Client::connect(addr).expect("connect publisher");
    assert!(publisher
        .publish("a", "loop :- loop. ok(a).", None)
        .expect("publish a")
        .is_ok());
    assert!(publisher
        .publish("b", "ok(b).", None)
        .expect("publish b")
        .is_ok());

    let saturator = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect saturator");
        let pin = Request::Query {
            tenant: Some("a".to_owned()),
            query: "loop".to_owned(),
            enumerate_all: false,
            step_budget: Some(100_000_000),
            cursor: false,
        };
        client.request(&pin).expect("pin query")
    });
    // Give the pin time to land on a worker.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut prober = Client::connect(addr).expect("connect prober");
    let mut a_busy = 0;
    for _ in 0..5 {
        // A is at its cap: immediate BUSY, no queueing behind the pin.
        match prober.query_tenant("a", "ok(X)").expect("query a") {
            Reply::Busy => a_busy += 1,
            Reply::Ok { .. } => break, // the pin finished early; stop probing
            other => panic!("tenant a answered {other:?}"),
        }
        // B answers while A is saturated — no cross-tenant starvation.
        match prober.query_tenant("b", "ok(X)").expect("query b") {
            Reply::Ok { body } => assert!(body.contains("X=b"), "{body}"),
            other => panic!("tenant b answered {other:?}"),
        }
    }
    assert!(a_busy >= 1, "the cap never turned tenant a away");

    // The pin dies on its budget; afterwards A serves again.
    match saturator.join().expect("saturator thread") {
        Reply::Err { class, .. } => assert_eq!(class, "budget"),
        other => panic!("pin query answered {other:?}"),
    }
    match prober
        .query_tenant("a", "ok(X)")
        .expect("query a after pin")
    {
        Reply::Ok { body } => assert!(body.contains("X=a"), "{body}"),
        other => panic!("tenant a after pin answered {other:?}"),
    }

    let stats = prober.stats().expect("stats");
    assert!(stats.contains("tenant.a.inflight=0\n"), "{stats}");
    assert!(stats.contains("tenant.b.inflight=0\n"), "{stats}");
    prober.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert!(metrics.busy >= a_busy as u64, "{metrics:?}");
    assert_eq!(metrics.errors, 0, "{metrics:?}");
}

#[test]
fn queries_before_consult_fail_with_no_program_class() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    match client.query("p(X)").expect("query") {
        Reply::Err { class, .. } => assert_eq!(class, "no_program"),
        other => panic!("answered {other:?}"),
    }
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}
