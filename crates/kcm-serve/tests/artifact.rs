//! Program-artifact verbs over loopback: `SNAPSHOT @name` export,
//! `PUBLISH … SNAPSHOT` import, and incremental `ASSERT`/`RETRACT` — a
//! knowledge base must round-trip the wire as a binary artifact and
//! serve byte-identical answers, updates must be visible to the very
//! next query without a re-consult, and damaged artifacts must come
//! back as classed errors on a connection that keeps working.

use kcm_serve::{Client, Reply, ServeConfig, Server};
use std::net::SocketAddr;

fn spawn_server(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<kcm_serve::ServeMetrics>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn body_of(reply: Reply) -> String {
    match reply {
        Reply::Ok { body } => body,
        other => panic!("expected OK, got {other:?}"),
    }
}

const KB: &str = "
    fact(1, a). fact(2, b). fact(3, c).
    lookup(K, V) :- fact(K, V).
";

#[test]
fn snapshot_round_trips_the_wire_and_serves_identical_answers() {
    // Publish source as `kb`, export its snapshot, re-publish the bytes
    // under `clone`, and require the clone to answer byte-identically —
    // the wire-level half of the snapshot-equivalence oracle.
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    body_of(client.publish("kb", KB, None).expect("publish"));

    let bytes = client.snapshot("kb").expect("snapshot");
    assert!(!bytes.is_empty());
    // The artifact is binary, not text — the frame layer must carry it
    // untouched, magic bytes (with their NUL) first.
    assert_eq!(&bytes[..8], b"KCMSNAP\0");

    let body = body_of(
        client
            .publish_snapshot("clone", &bytes, None)
            .expect("publish snapshot"),
    );
    assert!(body.contains("name=clone"), "{body}");
    assert!(body.contains("version=1"), "{body}");

    let want = body_of(
        client
            .query_tenant_all("kb", "lookup(K, V)")
            .expect("query"),
    );
    let got = body_of(
        client
            .query_tenant_all("clone", "lookup(K, V)")
            .expect("query"),
    );
    assert_eq!(got, want, "snapshot clone diverged from source original");

    // Second-generation export: the clone's own snapshot must load too.
    let again = client.snapshot("clone").expect("re-snapshot");
    body_of(
        client
            .publish_snapshot("grandclone", &again, None)
            .expect("publish"),
    );
    let got2 = body_of(
        client
            .query_tenant_all("grandclone", "lookup(K, V)")
            .expect("query"),
    );
    assert_eq!(got2, want);

    client.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("server run");
    assert_eq!(metrics.errors, 0, "{metrics:?}");
}

#[test]
fn assert_and_retract_are_visible_to_the_next_query() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut writer = Client::connect(addr).expect("connect");
    let mut reader = Client::connect(addr).expect("connect");
    body_of(writer.publish("kb", KB, None).expect("publish"));

    // ASSERT from one connection is visible to the next query from
    // another — no re-consult, no reconnect.
    let body = body_of(writer.assertz("kb", "fact(4, d)").expect("assert"));
    assert!(body.contains("version=2"), "{body}");
    let got = body_of(
        reader
            .query_tenant_all("kb", "lookup(4, V)")
            .expect("query"),
    );
    assert!(got.contains("V=d"), "{got}");

    // RETRACT removes the first matching clause; the reply says whether
    // anything matched.
    let body = body_of(writer.retract("kb", "fact(2, b)").expect("retract"));
    assert!(body.contains("removed=true"), "{body}");
    assert!(body.contains("version=3"), "{body}");
    let got = body_of(
        reader
            .query_tenant_all("kb", "lookup(2, V)")
            .expect("query"),
    );
    assert!(got.contains("success=false"), "{got}");

    // Retracting a clause that is no longer there is not an error —
    // `removed=false` reports the miss.
    let body = body_of(writer.retract("kb", "fact(2, b)").expect("retract"));
    assert!(body.contains("removed=false"), "{body}");

    // The surviving facts still answer, through the same switch tables.
    let got = body_of(
        reader
            .query_tenant_all("kb", "lookup(K, V)")
            .expect("query"),
    );
    for pair in ["K=1", "K=3", "K=4", "V=a", "V=c", "V=d"] {
        assert!(got.contains(pair), "{pair} missing from {got}");
    }

    writer.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

#[test]
fn damaged_artifacts_get_classed_errors_not_disconnects() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    body_of(client.publish("kb", KB, None).expect("publish"));
    let good = client.snapshot("kb").expect("snapshot");

    // Truncated, corrupted and wrong-magic artifacts are classed
    // `snapshot` errors; the connection survives each one.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    let cases: Vec<Vec<u8>> = vec![
        good[..good.len() / 2].to_vec(),
        flipped,
        b"NOTSNAP\0garbage".to_vec(),
        Vec::new(),
    ];
    for bad in cases {
        match client
            .publish_snapshot("broken", &bad, None)
            .expect("request")
        {
            Reply::Err { class, message } => {
                assert_eq!(class, "snapshot", "{message}")
            }
            other => panic!("damaged artifact answered {other:?}"),
        }
    }
    // Nothing was published under the failing name.
    match client
        .query_tenant("broken", "lookup(1, V)")
        .expect("query")
    {
        Reply::Err { class, .. } => assert_eq!(class, "unknown_program"),
        other => panic!("answered {other:?}"),
    }

    // Artifact verbs against an unknown tenant are classed, too.
    match client.request_raw("SNAPSHOT @ghost").expect("request") {
        Reply::Err { class, .. } => assert_eq!(class, "unknown_program"),
        other => panic!("answered {other:?}"),
    }
    match client.assertz("ghost", "fact(9, z)").expect("request") {
        Reply::Err { class, .. } => assert_eq!(class, "unknown_program"),
        other => panic!("answered {other:?}"),
    }

    // A malformed clause is a parse error, not an update.
    match client.assertz("kb", "fact(1,").expect("request") {
        Reply::Err { class, .. } => assert_eq!(class, "parse"),
        other => panic!("answered {other:?}"),
    }

    // Non-UTF-8 bytes in a *text* command are a protocol error on the
    // wire — the 8-bit-clean frame layer carries them to the parser,
    // which rejects them without dropping the connection.
    match client
        .request_raw(b"QUERY @kb lookup(\xff, V)".as_slice())
        .expect("request")
    {
        Reply::Err { class, .. } => assert_eq!(class, "protocol"),
        other => panic!("answered {other:?}"),
    }

    // After every rejection the connection still serves.
    let got = body_of(
        client
            .query_tenant_all("kb", "lookup(1, V)")
            .expect("query"),
    );
    assert!(got.contains("V=a"), "{got}");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}
