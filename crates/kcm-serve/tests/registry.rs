//! Multi-tenant registry tests over the wire: publish/re-publish
//! semantics, query-by-name byte-identity from concurrent connections,
//! LRU eviction, per-tenant budgets and stats — and the structural
//! claim of the nonblocking front end, that idle connections do not
//! cost threads.

use kcm_serve::workload::{direct_body, standard};
use kcm_serve::{Client, Reply, ServeConfig, Server};
use kcm_system::Tier;
use std::net::SocketAddr;

fn spawn_server(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<kcm_serve::ServeMetrics>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn body_of(reply: Reply) -> String {
    match reply {
        Reply::Ok { body } => body,
        other => panic!("expected OK, got {other:?}"),
    }
}

#[test]
fn published_programs_serve_every_connection_byte_identically() {
    // One connection publishes the suite workload; N other connections
    // query by name concurrently. Every body must match the direct
    // in-process rendering — the same oracle as session mode.
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut cases = standard();
    cases.truncate(4);
    let direct: Vec<String> = cases.iter().map(|c| direct_body(c, Tier::Native)).collect();

    let mut publisher = Client::connect(addr).expect("connect");
    for case in &cases {
        let body = body_of(
            publisher
                .publish(case.name, case.source, None)
                .expect("publish"),
        );
        assert!(body.contains(&format!("name={}", case.name)), "{body}");
        assert!(body.contains("version=1"), "{body}");
    }

    std::thread::scope(|scope| {
        for conn in 0..6 {
            let (cases, direct) = (&cases, &direct);
            scope.spawn(move || {
                // No consult: tenant queries need no per-connection state.
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..12 {
                    let ix = (conn + i) % cases.len();
                    let case = &cases[ix];
                    let reply = if case.enumerate_all {
                        client.query_tenant_all(case.name, case.query)
                    } else {
                        client.query_tenant(case.name, case.query)
                    };
                    assert_eq!(
                        body_of(reply.expect("query")),
                        direct[ix],
                        "{}: served tenant answer differs from direct run",
                        case.name
                    );
                }
            });
        }
    });

    let stats = publisher.stats().expect("stats");
    assert!(stats.contains("programs=4"), "{stats}");
    for case in &cases {
        assert!(
            stats.contains(&format!("tenant.{}.served=", case.name)),
            "{stats}"
        );
        // Native-tier serving: cycles stay 0, steps count the work.
        assert!(
            stats.contains(&format!("tenant.{}.cycles=0", case.name)),
            "{stats}"
        );
        let steps_line = stats
            .lines()
            .find(|l| l.starts_with(&format!("tenant.{}.steps=", case.name)))
            .unwrap_or_else(|| panic!("no steps line for {}: {stats}", case.name));
        let steps: u64 = steps_line.split('=').next_back().unwrap().parse().unwrap();
        assert!(steps > 0, "{steps_line}");
    }
    publisher.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.served, 72, "6 connections x 12 tenant queries");
    assert_eq!(metrics.publishes, 4);
    assert_eq!(metrics.errors, 0);
    assert!(metrics.steps > 0, "steps must count native-tier work");
    assert_eq!(metrics.cycles, 0, "native tier has no clock");
}

#[test]
fn republish_swaps_the_program_without_disturbing_other_tenants() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut a = Client::connect(addr).expect("connect");
    let mut b = Client::connect(addr).expect("connect");

    assert!(a.publish("kb", "p(old).", None).expect("publish").is_ok());
    assert!(a.publish("other", "q(1).", None).expect("publish").is_ok());
    let before = body_of(b.query_tenant("kb", "p(X)").expect("query"));
    assert!(before.contains("X=old"), "{before}");

    // Re-publish under the same name: version bumps, new queries see the
    // new program, the sibling tenant is untouched.
    let receipt = body_of(a.publish("kb", "p(new).", None).expect("republish"));
    assert!(receipt.contains("version=2"), "{receipt}");
    assert!(!receipt.contains("evicted="), "{receipt}");
    let after = body_of(b.query_tenant("kb", "p(X)").expect("query"));
    assert!(after.contains("X=new"), "{after}");
    let sibling = body_of(b.query_tenant("other", "q(X)").expect("query"));
    assert!(sibling.contains("X=1"), "{sibling}");

    // Per-tenant stats survive the re-publish: the name, not the
    // version, is the accounting unit.
    let stats = a.stats().expect("stats");
    assert!(stats.contains("tenant.kb.version=2"), "{stats}");
    assert!(stats.contains("tenant.kb.served=2"), "{stats}");
    a.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("run");
}

#[test]
fn full_registry_evicts_the_least_recently_used_tenant() {
    let (addr, server) = spawn_server(ServeConfig {
        max_programs: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.publish("a", "f(a).", None).expect("publish").is_ok());
    assert!(client.publish("b", "f(b).", None).expect("publish").is_ok());
    // Touch `a` so `b` is the least recently used.
    assert!(client.query_tenant("a", "f(X)").expect("query").is_ok());

    let receipt = body_of(client.publish("c", "f(c).", None).expect("publish"));
    assert!(receipt.contains("evicted=b"), "{receipt}");
    match client.query_tenant("b", "f(X)").expect("query") {
        Reply::Err { class, message } => {
            assert_eq!(class, "unknown_program", "{message}");
            assert!(message.contains('b'), "{message}");
        }
        other => panic!("evicted tenant answered {other:?}"),
    }
    // The survivors still serve.
    assert!(client.query_tenant("a", "f(X)").expect("query").is_ok());
    assert!(client.query_tenant("c", "f(X)").expect("query").is_ok());
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("run");
}

#[test]
fn tenant_step_budget_caps_queries_and_request_budget_overrides() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .publish("capped", "loop :- loop. ok(1).", Some(10_000))
        .expect("publish")
        .is_ok());

    // The tenant budget stops the runaway query.
    match client.query_tenant("capped", "loop").expect("query") {
        Reply::Err { class, .. } => assert_eq!(class, "budget"),
        other => panic!("runaway answered {other:?}"),
    }
    // A per-request BUDGET overrides the tenant's (still a stop here —
    // the point is that the request-level knob reaches the machine).
    match client
        .request_raw("QUERY @capped BUDGET 1 ok(X)")
        .expect("raw")
    {
        Reply::Err { class, .. } => assert_eq!(class, "budget"),
        other => panic!("BUDGET 1 answered {other:?}"),
    }
    // Within budget, the tenant serves normally.
    let body = body_of(client.query_tenant("capped", "ok(X)").expect("query"));
    assert!(body.contains("X=1"), "{body}");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("tenant.capped.budget_stops=2"), "{stats}");
    assert!(stats.contains("tenant.capped.served=1"), "{stats}");
    client.shutdown().expect("shutdown");
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.budget_stops, 2);
    assert_eq!(metrics.served, 1);
}

#[test]
fn tenant_and_session_modes_coexist_on_one_connection() {
    // A connection can consult its own program and also query tenants;
    // neither mode disturbs the other's state.
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .publish("kb", "t(shared).", None)
        .expect("publish")
        .is_ok());
    assert!(client.consult("s(private).").expect("consult").is_ok());

    let session = body_of(client.query("s(X)").expect("query"));
    assert!(session.contains("X=private"), "{session}");
    let tenant = body_of(client.query_tenant("kb", "t(X)").expect("query"));
    assert!(tenant.contains("X=shared"), "{tenant}");
    // Session mode again: the tenant query didn't replace the
    // connection's program.
    let again = body_of(client.query("s(X)").expect("query"));
    assert!(again.contains("X=private"), "{again}");
    // And the tenant program does not know the session's predicate.
    match client.query_tenant("kb", "s(X)").expect("query") {
        Reply::Ok { body } => assert!(body.starts_with("success=false"), "{body}"),
        other => panic!("cross-mode query answered {other:?}"),
    }
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("run");
}

#[test]
fn unknown_tenant_is_a_classed_error_not_a_dropped_connection() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    match client.query_tenant("ghost", "p(X)").expect("query") {
        Reply::Err { class, message } => {
            assert_eq!(class, "unknown_program");
            assert!(message.contains("ghost"), "{message}");
        }
        other => panic!("unknown tenant answered {other:?}"),
    }
    // The connection survives.
    assert!(client
        .publish("ghost", "p(9).", None)
        .expect("publish")
        .is_ok());
    let body = body_of(client.query_tenant("ghost", "p(X)").expect("query"));
    assert!(body.contains("X=9"), "{body}");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("run");
}

/// Reads this process's live thread count from /proc (Linux only; other
/// platforms skip the assertion).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn idle_connections_cost_buffers_not_threads() {
    // The structural claim of the readiness-loop front end: the server's
    // thread count is set by its worker pool, not its connection count.
    // Server and clients share this process, so /proc/self/status counts
    // both sides — client connections add zero threads too.
    let (addr, server) = spawn_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut control = Client::connect(addr).expect("connect");
    assert!(control
        .publish("kb", "p(1).", None)
        .expect("publish")
        .is_ok());

    let Some(before) = thread_count() else {
        // Not a /proc platform: the byte-identity tests still cover the
        // functional side; skip the thread-count assertion.
        control.shutdown().expect("shutdown");
        server.join().expect("server thread").expect("run");
        return;
    };

    let mut herd = Vec::new();
    for _ in 0..300 {
        herd.push(Client::connect(addr).expect("idle connect"));
    }
    // The server still answers promptly while carrying the herd.
    let body = body_of(control.query_tenant("kb", "p(X)").expect("query"));
    assert!(body.contains("X=1"), "{body}");
    let during = thread_count().expect("/proc/self/status");
    assert!(
        during <= before + 2,
        "300 idle connections grew the thread count {before} -> {during}"
    );
    drop(herd);
    control.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("run");
}
