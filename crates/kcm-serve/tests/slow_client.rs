//! The slow-client framing tests: a peer that dribbles bytes with long
//! pauses must decode identically to one that writes whole frames.
//!
//! The previous thread-per-connection server polled with a 100ms read
//! timeout and retried `read_frame` from scratch on timeout, discarding
//! whatever prefix of the frame had already been consumed — a client
//! straddling a tick boundary desynced the stream and got garbage (or
//! hung). The readiness-loop server keeps all partial state in the
//! connection's `FrameBuf`, so these tests dribble bytes with gaps well
//! over the server's tick and assert both the answer *and* that the
//! stream stays in sync for the next request.

use kcm_serve::protocol::{read_frame, render_outcome};
use kcm_serve::{Reply, ServeConfig, Server};
use kcm_system::{Kcm, QueryOpts, Tier};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Comfortably longer than the server's 100ms wait tick, so every gap
/// guarantees at least one tick fires mid-frame.
const GAP: Duration = Duration::from_millis(150);

fn spawn_server() -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<kcm_serve::ServeMetrics>>,
) {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn frame(payload: &str) -> Vec<u8> {
    format!("{}\n{payload}", payload.len()).into_bytes()
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let payload = read_frame(reader)
        .expect("read reply frame")
        .expect("server kept the connection");
    Reply::parse(&payload).expect("parse reply")
}

fn direct_body(source: &str, query: &str, enumerate_all: bool) -> String {
    let mut kcm = Kcm::new();
    kcm.load(source).expect("consult");
    let opts = QueryOpts {
        enumerate_all,
        tier: Tier::Native,
        ..QueryOpts::default()
    };
    render_outcome(&kcm.query(query, &opts).expect("query"))
}

#[test]
fn frame_dribbled_across_tick_boundaries_parses_and_stays_in_sync() {
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A whole consult frame at once: the fast path still works.
    stream
        .write_all(&frame("CONSULT\nok(42). loop :- loop."))
        .expect("consult");
    assert!(read_reply(&mut reader).is_ok(), "consult");

    // Now the query frame, cut so that the server sees (a) half a length
    // line, (b) a complete length line with no payload, and (c) half a
    // payload — each straddling at least one 100ms tick.
    let query = frame("QUERY ok(X)");
    let cuts = [1, 3, 8]; // "1" | "1\nQUERY" ... within b"11\nQUERY ok(X)"
    let mut at = 0;
    for cut in cuts {
        stream.write_all(&query[at..cut]).expect("dribble");
        std::thread::sleep(GAP);
        at = cut;
    }
    stream.write_all(&query[at..]).expect("dribble tail");
    match read_reply(&mut reader) {
        Reply::Ok { body } => {
            assert_eq!(body, direct_body("ok(42). loop :- loop.", "ok(X)", false));
            assert!(body.contains("X=42"), "{body}");
        }
        other => panic!("dribbled query answered {other:?}"),
    }

    // The stream must still be perfectly framed: an immediate follow-up
    // (whole frame, no pauses) gets a clean answer, not desync garbage.
    stream.write_all(&frame("QUERY ok(Y)")).expect("follow-up");
    match read_reply(&mut reader) {
        Reply::Ok { body } => assert!(body.contains("Y=42"), "{body}"),
        other => panic!("follow-up answered {other:?}"),
    }

    stream.write_all(&frame("SHUTDOWN")).expect("shutdown");
    assert!(read_reply(&mut reader).is_ok(), "shutdown");
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.served, 2);
    assert_eq!(metrics.errors, 0, "{metrics:?}");
}

#[test]
fn byte_by_byte_client_decodes_identically_to_whole_frames() {
    // The degenerate slow client: every single byte its own write. Short
    // inter-byte delays keep the test fast; two long gaps land mid-length
    // and mid-payload to cross tick boundaries as well.
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream
        .write_all(&frame("CONSULT\np(1). p(2). p(3)."))
        .expect("consult");
    assert!(read_reply(&mut reader).is_ok(), "consult");

    let query = frame("QUERYALL p(X)");
    for (i, byte) in query.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).expect("byte");
        match i {
            1 | 9 => std::thread::sleep(GAP), // mid-length-line, mid-payload
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    match read_reply(&mut reader) {
        Reply::Ok { body } => {
            assert_eq!(body, direct_body("p(1). p(2). p(3).", "p(X)", true));
        }
        other => panic!("byte-by-byte query answered {other:?}"),
    }

    stream.write_all(&frame("SHUTDOWN")).expect("shutdown");
    assert!(read_reply(&mut reader).is_ok(), "shutdown");
    server.join().expect("server thread").expect("run");
}

#[test]
fn byte_by_byte_cursor_pull_decodes_and_keeps_the_session_suspended() {
    // A cursor's NEXT dribbled one byte at a time, with gaps straddling
    // the server's tick: the suspended session must sit untouched until
    // the frame completes, then serve exactly the requested batch, and
    // the idle reaper must not confuse a slow *frame* with an idle
    // *cursor* (last_used refreshes when the pull lands).
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream
        .write_all(&frame("CONSULT\nd(1). d(2). d(3). d(4)."))
        .expect("consult");
    assert!(read_reply(&mut reader).is_ok(), "consult");
    stream
        .write_all(&frame("QUERY CURSOR d(X)"))
        .expect("open cursor");
    let id: u64 = match read_reply(&mut reader) {
        Reply::Ok { body } => body
            .strip_prefix("cursor=")
            .and_then(|rest| rest.trim_end().parse().ok())
            .unwrap_or_else(|| panic!("bad open body {body:?}")),
        other => panic!("cursor open answered {other:?}"),
    };

    // Every byte of `NEXT <id> 2` its own write; two long gaps land
    // mid-length-line and mid-payload to cross tick boundaries.
    let next = frame(&format!("NEXT {id} 2"));
    for (i, byte) in next.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).expect("byte");
        match i {
            1 | 5 => std::thread::sleep(GAP),
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    match read_reply(&mut reader) {
        Reply::Ok { body } => {
            assert!(
                body.starts_with(&format!("cursor={id} answers=2 done=false")),
                "{body:?}"
            );
            assert!(body.contains("X=1\n") && body.contains("X=2\n"), "{body:?}");
        }
        other => panic!("dribbled NEXT answered {other:?}"),
    }

    // The stream is still perfectly framed and the cursor still live: a
    // whole-frame follow-up drains the rest.
    stream
        .write_all(&frame(&format!("NEXT {id} 10")))
        .expect("follow-up NEXT");
    match read_reply(&mut reader) {
        Reply::Ok { body } => {
            assert!(
                body.starts_with(&format!("cursor={id} answers=2 done=true")),
                "{body:?}"
            );
            assert!(body.contains("X=3\n") && body.contains("X=4\n"), "{body:?}");
        }
        other => panic!("follow-up NEXT answered {other:?}"),
    }

    stream.write_all(&frame("SHUTDOWN")).expect("shutdown");
    assert!(read_reply(&mut reader).is_ok(), "shutdown");
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.cursors_opened, 1);
    assert_eq!(metrics.cursor_batches, 2);
    assert_eq!(metrics.cursor_answers, 4);
    assert_eq!(metrics.errors, 0, "{metrics:?}");
}

#[test]
fn pipelined_frames_in_one_write_are_all_answered_in_order() {
    // The inverse of dribbling: many frames in a single write. The
    // decoder must pop them one at a time and the per-connection FIFO
    // gate must answer them in order.
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let mut batch = Vec::new();
    batch.extend_from_slice(&frame("CONSULT\nn(1). n(2)."));
    batch.extend_from_slice(&frame("QUERY n(A)"));
    batch.extend_from_slice(&frame("QUERYALL n(B)"));
    batch.extend_from_slice(&frame("STATS"));
    stream.write_all(&batch).expect("batch");

    assert!(read_reply(&mut reader).is_ok(), "consult");
    match read_reply(&mut reader) {
        Reply::Ok { body } => assert!(body.contains("A=1"), "{body}"),
        other => panic!("first query answered {other:?}"),
    }
    match read_reply(&mut reader) {
        Reply::Ok { body } => assert!(body.contains("solutions=2"), "{body}"),
        other => panic!("second query answered {other:?}"),
    }
    match read_reply(&mut reader) {
        Reply::Ok { body } => assert!(body.contains("served=2"), "{body}"),
        other => panic!("stats answered {other:?}"),
    }

    stream.write_all(&frame("SHUTDOWN")).expect("shutdown");
    assert!(read_reply(&mut reader).is_ok(), "shutdown");
    server.join().expect("server thread").expect("run");
}
