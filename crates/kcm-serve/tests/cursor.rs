//! Cursor lifecycle tests: a real `Server` on an ephemeral port driven
//! through every way a cursor can live and die — streamed to
//! exhaustion, closed, killed by its budget, expired by the idle
//! reaper, capped per connection, abandoned with its connection, and
//! kept streaming an old image across a republish.

use kcm_serve::{Client, Reply, Request, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn spawn_server(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<kcm_serve::ServeMetrics>>,
) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr) {
    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
}

/// Splits a batch body into (answers-head fields, answer lines).
fn parse_batch(body: &str) -> (u64, bool, Vec<String>) {
    let mut lines = body.lines();
    let head = lines.next().expect("batch head");
    let field = |name: &str| {
        head.split(' ')
            .find_map(|f| f.strip_prefix(name))
            .unwrap_or_else(|| panic!("no {name} in {head:?}"))
            .to_owned()
    };
    let answers: u64 = field("answers=").parse().expect("answers count");
    let done: bool = field("done=").parse().expect("done flag");
    let solutions: Vec<String> = lines
        .filter(|l| !l.starts_with("output="))
        .map(str::to_owned)
        .collect();
    assert_eq!(solutions.len() as u64, answers, "{body:?}");
    (answers, done, solutions)
}

fn next_ok(client: &mut Client, id: u64, count: u64) -> (u64, bool, Vec<String>) {
    match client.next(id, Some(count)).expect("NEXT") {
        Reply::Ok { body } => parse_batch(&body),
        other => panic!("NEXT {id} answered {other:?}"),
    }
}

#[test]
fn cursor_streams_the_enumeration_in_order_and_auto_releases_on_exhaustion() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .consult("p(1). p(2). p(3). p(4). p(5).")
        .expect("consult")
        .is_ok());
    let id = client.open_cursor(None, "p(X)", None).expect("open");

    let (n, done, sols) = next_ok(&mut client, id, 2);
    assert_eq!((n, done), (2, false));
    assert_eq!(sols, ["X=1", "X=2"]);
    // A `NEXT <id>` without a count pulls exactly one answer.
    match client.next(id, None).expect("NEXT") {
        Reply::Ok { body } => assert_eq!(parse_batch(&body), (1, false, vec!["X=3".to_owned()])),
        other => panic!("NEXT answered {other:?}"),
    }
    // Over-asking past the end: the last answers arrive with done=true
    // and the cursor is auto-released.
    let (n, done, sols) = next_ok(&mut client, id, 10);
    assert_eq!((n, done), (2, true));
    assert_eq!(sols, ["X=4", "X=5"]);
    match client.next(id, Some(1)).expect("NEXT after done") {
        Reply::Err { class, message } => {
            assert_eq!(class, "protocol");
            assert!(message.contains("unknown cursor"), "{message}");
        }
        other => panic!("NEXT on a released cursor answered {other:?}"),
    }

    shutdown(addr);
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.cursors_opened, 1);
    assert_eq!(metrics.cursor_batches, 3);
    assert_eq!(metrics.cursor_answers, 5);
    assert_eq!(metrics.cursors_reaped, 0, "client-driven release only");
    // The post-release NEXT was a protocol error answered on the loop,
    // not a failed query.
    assert_eq!(metrics.errors, 0);
}

#[test]
fn next_and_close_on_missing_closed_or_foreign_cursors_are_protocol_errors() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut owner = Client::connect(addr).expect("connect owner");
    assert!(owner.consult("q(a). q(b).").expect("consult").is_ok());

    // Never-issued ids.
    for request in [
        Request::Next {
            id: 999,
            count: None,
        },
        Request::Close { id: 999 },
    ] {
        match owner.request(&request).expect("request") {
            Reply::Err { class, message } => {
                assert_eq!(class, "protocol");
                assert!(message.contains("unknown cursor 999"), "{message}");
            }
            other => panic!("{request:?} answered {other:?}"),
        }
    }

    let id = owner.open_cursor(None, "q(X)", None).expect("open");

    // Another connection can neither pull nor close someone else's
    // cursor — same indistinguishable error as a missing id.
    let mut stranger = Client::connect(addr).expect("connect stranger");
    for reply in [
        stranger.next(id, Some(1)).expect("foreign NEXT"),
        stranger.close_cursor(id).expect("foreign CLOSE"),
    ] {
        match reply {
            Reply::Err { class, .. } => assert_eq!(class, "protocol"),
            other => panic!("foreign access answered {other:?}"),
        }
    }
    // The owner is unaffected by the stranger's probing.
    assert_eq!(next_ok(&mut owner, id, 1).2, ["X=a"]);

    // Close, then every further touch is the same protocol error.
    match owner.close_cursor(id).expect("CLOSE") {
        Reply::Ok { body } => assert_eq!(body, format!("closed={id}\n")),
        other => panic!("CLOSE answered {other:?}"),
    }
    for reply in [
        owner.next(id, Some(1)).expect("NEXT after close"),
        owner.close_cursor(id).expect("double CLOSE"),
    ] {
        match reply {
            Reply::Err { class, .. } => assert_eq!(class, "protocol"),
            other => panic!("closed cursor answered {other:?}"),
        }
    }

    shutdown(addr);
    server.join().expect("server thread").expect("run");
}

#[test]
fn budget_exhaustion_kills_the_cursor_cleanly_and_spares_the_connection() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .consult("loop :- loop. p(1). p(X) :- loop, p(X).")
        .expect("consult")
        .is_ok());
    // Each pull gets a fresh 10k-step slice: enough for the first
    // answer, nowhere near enough for the divergent second clause.
    let id = client
        .open_cursor(None, "p(X)", Some(10_000))
        .expect("open");
    assert_eq!(next_ok(&mut client, id, 1).2, ["X=1"]);
    match client.next(id, Some(1)).expect("NEXT into the loop") {
        Reply::Err { class, message } => {
            assert_eq!(class, "budget", "{message}");
            assert!(message.contains("step budget"), "{message}");
        }
        other => panic!("budget-doomed NEXT answered {other:?}"),
    }
    // The cursor died with the slice; the connection did not.
    match client.next(id, Some(1)).expect("NEXT on the corpse") {
        Reply::Err { class, .. } => assert_eq!(class, "protocol"),
        other => panic!("dead cursor answered {other:?}"),
    }
    match client.query("p(Y)").expect("plain query") {
        Reply::Ok { body } => assert!(body.contains("Y=1"), "{body}"),
        other => panic!("follow-up query answered {other:?}"),
    }

    shutdown(addr);
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.budget_stops, 1);
}

#[test]
fn idle_cursors_are_reaped_on_the_tick() {
    let cfg = ServeConfig {
        cursor_idle: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let (addr, server) = spawn_server(cfg);
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.consult("r(1). r(2).").expect("consult").is_ok());
    let id = client.open_cursor(None, "r(X)", None).expect("open");
    assert_eq!(next_ok(&mut client, id, 1).2, ["X=1"]);

    // Park well past the idle deadline plus the 100ms tick.
    std::thread::sleep(Duration::from_millis(600));
    match client.next(id, Some(1)).expect("NEXT after expiry") {
        Reply::Err { class, message } => {
            assert_eq!(class, "protocol");
            assert!(message.contains("unknown cursor"), "{message}");
        }
        other => panic!("expired cursor answered {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.contains("cursors_reaped=1\n"), "{stats}");
    assert!(stats.contains("cursors_open=0\n"), "{stats}");

    shutdown(addr);
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.cursors_reaped, 1);
}

#[test]
fn per_connection_cursor_cap_answers_busy_until_one_is_released() {
    let cfg = ServeConfig {
        cursors_per_conn: 2,
        ..ServeConfig::default()
    };
    let (addr, server) = spawn_server(cfg);
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.consult("s(1). s(2).").expect("consult").is_ok());
    let first = client.open_cursor(None, "s(X)", None).expect("open 1");
    let _second = client.open_cursor(None, "s(X)", None).expect("open 2");

    let over_cap = Request::Query {
        tenant: None,
        query: "s(X)".to_owned(),
        enumerate_all: false,
        step_budget: None,
        cursor: true,
    };
    assert!(
        matches!(client.request(&over_cap).expect("open 3"), Reply::Busy),
        "third open must answer BUSY"
    );
    // The cap is per connection, not per server.
    let mut other = Client::connect(addr).expect("connect other");
    assert!(other.consult("s(9).").expect("consult").is_ok());
    other
        .open_cursor(None, "s(X)", None)
        .expect("other conn open");

    // Releasing one frees a slot.
    assert!(client.close_cursor(first).expect("close").is_ok());
    client
        .open_cursor(None, "s(X)", None)
        .expect("open after close");

    shutdown(addr);
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.cursors_opened, 4);
    assert_eq!(metrics.busy, 1);
    assert_eq!(
        metrics.cursors_reaped, 3,
        "cursors abandoned with their connections are reclaimed"
    );
}

#[test]
fn republish_keeps_an_open_cursor_on_the_image_it_opened_against() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .publish("kb", "d(1). d(2). d(3).", None)
        .expect("publish")
        .is_ok());
    let id = client.open_cursor(Some("kb"), "d(X)", None).expect("open");
    assert_eq!(next_ok(&mut client, id, 1).2, ["X=1"]);

    // Republish with disjoint facts while the cursor is mid-stream.
    assert!(client
        .publish("kb", "d(10). d(20).", None)
        .expect("republish")
        .is_ok());

    // The cursor still enumerates the image it opened against…
    let (n, done, sols) = next_ok(&mut client, id, 10);
    assert_eq!((n, done), (2, true));
    assert_eq!(sols, ["X=2", "X=3"]);
    // …while new work sees the new program.
    match client.query_tenant_all("kb", "d(X)").expect("new query") {
        Reply::Ok { body } => {
            assert!(body.contains("X=10") && body.contains("X=20"), "{body}");
            assert!(!body.contains("X=1\n"), "{body}");
        }
        other => panic!("post-republish query answered {other:?}"),
    }
    let new_cursor = client
        .open_cursor(Some("kb"), "d(X)", None)
        .expect("new cursor");
    assert_eq!(next_ok(&mut client, new_cursor, 1).2, ["X=10"]);
    assert!(client.close_cursor(new_cursor).expect("close").is_ok());

    shutdown(addr);
    server.join().expect("server thread").expect("run");
}

#[test]
fn million_solution_generator_streams_through_a_cursor() {
    let (addr, server) = spawn_server(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client
        .consult("d(0). d(1). d(2). d(3). d(4). d(5). d(6). d(7). d(8). d(9).")
        .expect("consult")
        .is_ok());

    // 10^6 solutions; the server never materializes them — each NEXT
    // resumes the suspended machine for one bounded batch.
    let query = "d(A), d(B), d(C), d(D), d(E), d(F)";
    let t = Instant::now();
    let id = client.open_cursor(None, query, None).expect("open");
    let (n, done, first) = next_ok(&mut client, id, 1);
    let first_answer = t.elapsed();
    assert_eq!((n, done), (1, false));
    assert_eq!(first, ["A=0,B=0,C=0,D=0,E=0,F=0"]);
    // The acceptance bar is 10ms on a quiet loopback; the test asserts a
    // generous multiple so a loaded CI box doesn't flake.
    assert!(
        first_answer < Duration::from_millis(500),
        "open-to-first-answer took {first_answer:?}"
    );

    // Stream 10k answers in 40 batches and verify every single one: the
    // facts are consulted in digit order, so the enumeration counts.
    let mut seen = 1u64;
    for _ in 0..40 {
        let (n, done, sols) = next_ok(&mut client, id, 250);
        assert_eq!((n, done), (250, false));
        for sol in sols {
            let digits: Vec<char> = format!("{seen:06}").chars().collect();
            assert_eq!(
                sol,
                format!(
                    "A={},B={},C={},D={},E={},F={}",
                    digits[0], digits[1], digits[2], digits[3], digits[4], digits[5]
                ),
                "answer {seen} out of enumeration order"
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 10_001);
    assert!(client.close_cursor(id).expect("close").is_ok());

    shutdown(addr);
    let metrics = server.join().expect("server thread").expect("run");
    assert_eq!(metrics.cursor_answers, 10_001);
    assert_eq!(metrics.errors, 0, "{metrics:?}");
}
