//! The `kcm-serve` binary: bind, announce the address, serve until a
//! client sends SHUTDOWN, then print the final metrics.
//!
//! ```text
//! kcm-serve [addr]      default 127.0.0.1:7878; use port 0 for ephemeral
//! ```
//!
//! Environment:
//!
//! * `KCM_SERVE_WORKERS` — worker threads (default: host parallelism);
//! * `KCM_SERVE_QUEUE` — bounded queue depth (default 64);
//! * `KCM_SERVE_BUDGET` — default step budget per query (default
//!   50000000; `0` disables the deadline);
//! * `KCM_SERVE_PROGRAMS` — program-registry capacity (default 64);
//!   publishing a new name into a full registry evicts the
//!   least-recently-used tenant.

use kcm_serve::{ServeConfig, Server};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let mut cfg = ServeConfig {
        queue_depth: env_usize("KCM_SERVE_QUEUE", 64),
        ..ServeConfig::default()
    };
    cfg.workers = env_usize("KCM_SERVE_WORKERS", cfg.workers);
    cfg.max_programs = env_usize("KCM_SERVE_PROGRAMS", cfg.max_programs);
    cfg.default_step_budget = match env_usize("KCM_SERVE_BUDGET", 50_000_000) {
        0 => None,
        steps => Some(steps as u64),
    };
    let server = Server::bind(&addr, cfg.clone())?;
    // The exact line CI scrapes the ephemeral port from — keep it first
    // and flushed.
    println!("kcm-serve: listening on {}", server.local_addr()?);
    println!(
        "kcm-serve: {} workers, queue depth {}, step budget {}, registry capacity {}",
        cfg.workers,
        cfg.queue_depth,
        cfg.default_step_budget
            .map_or_else(|| "off".to_owned(), |b| b.to_string()),
        cfg.max_programs
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let metrics = server.run()?;
    print!("kcm-serve: drained\n{}", metrics.render());
    Ok(())
}
