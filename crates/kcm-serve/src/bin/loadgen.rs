//! `loadgen` — drive a running `kcm-serve` with the standard workload
//! and report latency and throughput.
//!
//! ```text
//! loadgen <addr> [connections] [queries-per-connection]
//! loadgen <addr> mt [connections] [active] [queries] [tenants]
//! loadgen <addr> churn [rounds] [connections-per-round]
//! loadgen <addr> shutdown                ask the server to drain and stop
//! ```
//!
//! The default (session-mode) scenario: 4 connections × 50 queries, each
//! connection walking the [`kcm_serve::workload::standard`] mix
//! round-robin, consulting each case's program before querying it (a
//! service sees consults *and* queries, so both are in the driven
//! traffic; only the query is timed). `BUSY` answers are counted and
//! retried after a short backoff — that is the protocol's contract.
//!
//! The `mt` (multi-tenant) scenario exercises the registry and the
//! nonblocking front end at connection scale: one publisher connection
//! `PUBLISH`es the first `tenants` workload cases as named programs;
//! `connections - active - 1` connections are opened and then left
//! *idle* — on a readiness-loop server they cost a buffer each, no
//! threads; `active` driver threads run `queries` each of
//! `QUERY @<tenant> ...` round-robin. Every served body is compared
//! **byte-for-byte** against a direct in-process
//! [`kcm_system::Kcm::query`] on the native tier
//! ([`kcm_serve::workload::direct_body`]); any mismatch or `ERR` reply
//! is a panic, and `BUSY` is the only retried answer. Defaults: 1000
//! connections, 8 active, 25 queries each, 4 tenants.
//!
//! The `churn` scenario stresses cursor lifecycles under connection
//! churn: every round opens a fresh wave of connections, each of which
//! opens a cursor over a 10^6-solution generator tenant, measures the
//! open-to-first-answer latency, streams a few `NEXT` batches, runs an
//! interleaved plain tenant query — and then half the wave `CLOSE`s its
//! cursor while the other half *abandons* it by disconnecting (the
//! server must reap those). While the wave streams, the main thread
//! republishes both tenants repeatedly, so live cursors keep serving the
//! image they opened against. Per-round JSONL rows (`case=churn`) carry
//! `round`/`connects`/`batches`/`answers`/`closed`/`abandoned`/`busy`
//! and first-answer percentiles; the summary carries
//! `rounds`/`connects`/`republishes`. Defaults: 5 rounds × 8
//! connections.
//!
//! Output: a latency table per workload case — per tenant in `mt`
//! (mean/p50/p90/p99 in µs of the query round trip), a throughput
//! summary, and the same rows as JSONL in
//! `target/bench-json/BENCH_serve.jsonl` (`KCM_BENCH_JSON` relocates or
//! disables it, as for every bench driver). `mt` rows carry a
//! `tenant=...` field and the summary carries
//! `connections`/`idle`/`active`/`tenants`.

use bench::{JsonlWriter, Record};
use kcm_serve::workload::{direct_body, standard, ServeCase};
use kcm_serve::{Client, Reply, Request};
use kcm_system::Tier;
use std::time::{Duration, Instant};

/// Latencies are repeated per case across connections; keep them all and
/// read percentiles off the sorted vector.
///
/// Nearest-rank with ceiling: the p-quantile is the smallest element
/// with at least `ceil(p * n)` observations at or below it. The
/// previous form (`round((n - 1) * p)`) could round to an index *below*
/// that rank and under-report tail latency — e.g. p90 of 7 samples
/// landed on the 6th of 7 (`round(5.4) = 5`) where the nearest rank is
/// `ceil(6.3) = 7`, the maximum.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct ConnReport {
    latencies_ns: Vec<(usize, u64)>, // (case index, query latency)
    busy: u64,
}

fn drive_connection(
    addr: &str,
    cases: &[ServeCase],
    first_case: usize,
    queries: usize,
) -> std::io::Result<ConnReport> {
    let mut client = Client::connect(addr)?;
    let mut report = ConnReport {
        latencies_ns: Vec::with_capacity(queries),
        busy: 0,
    };
    for i in 0..queries {
        let case_ix = (first_case + i) % cases.len();
        let case = &cases[case_ix];
        let consulted = client.consult(case.source)?;
        assert!(
            consulted.is_ok(),
            "{}: consult answered {consulted:?}",
            case.name
        );
        let request = Request::Query {
            tenant: None,
            query: case.query.to_owned(),
            enumerate_all: case.enumerate_all,
            step_budget: None,
            cursor: false,
        };
        loop {
            let t = Instant::now();
            match client.request(&request)? {
                Reply::Ok { .. } => {
                    report
                        .latencies_ns
                        .push((case_ix, t.elapsed().as_nanos() as u64));
                    break;
                }
                Reply::Snapshot { .. } => panic!("unexpected snapshot reply"),
                Reply::Busy => {
                    report.busy += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Reply::Err { class, message } => {
                    panic!("{}: query failed ({class}): {message}", case.name)
                }
            }
        }
    }
    Ok(report)
}

/// One `mt` driver thread: `queries` tenant queries round-robin, each
/// reply checked byte-for-byte against the direct oracle.
fn drive_tenants(
    addr: &str,
    cases: &[ServeCase],
    expected: &[String],
    first_case: usize,
    queries: usize,
) -> std::io::Result<ConnReport> {
    let mut client = Client::connect(addr)?;
    let mut report = ConnReport {
        latencies_ns: Vec::with_capacity(queries),
        busy: 0,
    };
    for i in 0..queries {
        let case_ix = (first_case + i) % cases.len();
        let case = &cases[case_ix];
        let request = Request::Query {
            tenant: Some(case.name.to_owned()),
            query: case.query.to_owned(),
            enumerate_all: case.enumerate_all,
            step_budget: None,
            cursor: false,
        };
        loop {
            let t = Instant::now();
            match client.request(&request)? {
                Reply::Ok { body } => {
                    assert_eq!(
                        body, expected[case_ix],
                        "{}: served body diverged from the direct oracle",
                        case.name
                    );
                    report
                        .latencies_ns
                        .push((case_ix, t.elapsed().as_nanos() as u64));
                    break;
                }
                Reply::Snapshot { .. } => panic!("unexpected snapshot reply"),
                Reply::Busy => {
                    report.busy += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Reply::Err { class, message } => {
                    panic!("{}: tenant query failed ({class}): {message}", case.name)
                }
            }
        }
    }
    Ok(report)
}

fn run_sessions(addr: &str, connections: usize, queries: usize) -> std::io::Result<()> {
    let cases = standard();
    println!(
        "loadgen: {connections} connections x {queries} queries against {addr} ({} cases round-robin)",
        cases.len()
    );
    let wall = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let cases = &cases;
                scope.spawn(move || drive_connection(addr, cases, c, queries))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect::<std::io::Result<_>>()
    })?;
    let wall = wall.elapsed();
    let mut jsonl = JsonlWriter::for_bench("serve");
    report_cases(&mut jsonl, &cases, &reports, wall, None);
    let summary = Record::summary("serve", "all").u64("connections", connections as u64);
    report_summary(&mut jsonl, &reports, wall, summary);
    jsonl.announce();
    Ok(())
}

fn run_multi_tenant(
    addr: &str,
    connections: usize,
    active: usize,
    queries: usize,
    tenants: usize,
) -> std::io::Result<()> {
    let mut cases = standard();
    cases.truncate(tenants.clamp(1, cases.len()));
    let tenants = cases.len();
    let active = active.max(1);
    let idle = connections.saturating_sub(active + 1);
    println!(
        "loadgen: mt scenario against {addr}: {tenants} tenants, {idle} idle connections, {active} active x {queries} queries"
    );

    // The oracle: what a direct native-tier query computes, rendered the
    // same way the server renders it.
    let expected: Vec<String> = cases
        .iter()
        .map(|case| direct_body(case, Tier::Native))
        .collect();

    // One publisher connection installs every tenant (case names are
    // valid tenant names by construction).
    let mut publisher = Client::connect(addr)?;
    for case in &cases {
        let reply = publisher.publish(case.name, case.source, None)?;
        assert!(reply.is_ok(), "{}: publish answered {reply:?}", case.name);
    }

    // The idle herd: opened, then never spoken on. Held alive for the
    // whole run so the server carries them while serving the active set.
    let wall = Instant::now();
    let mut herd = Vec::with_capacity(idle);
    for _ in 0..idle {
        herd.push(Client::connect(addr)?);
    }
    let connected = wall.elapsed();
    println!("loadgen: {idle} idle connections established in {connected:?}");

    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..active)
            .map(|c| {
                let (cases, expected) = (&cases, &expected);
                scope.spawn(move || drive_tenants(addr, cases, expected, c, queries))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect::<std::io::Result<_>>()
    })?;
    let wall = wall.elapsed();
    drop(herd);

    let mut jsonl = JsonlWriter::for_bench("serve");
    report_cases(&mut jsonl, &cases, &reports, wall, Some("tenant"));
    let summary = Record::summary("serve", "mt")
        .u64("connections", (idle + active + 1) as u64)
        .u64("idle", idle as u64)
        .u64("active", active as u64)
        .u64("tenants", tenants as u64);
    report_summary(&mut jsonl, &reports, wall, summary);
    jsonl.announce();
    Ok(())
}

/// The churn generator tenant: ten facts, queried as a six-way
/// conjunction for 10^6 solutions — far more than any wave pulls, so
/// every cursor is released mid-enumeration, never by exhaustion.
const CHURN_GEN_SOURCE: &str = "d(0). d(1). d(2). d(3). d(4). d(5). d(6). d(7). d(8). d(9).";
const CHURN_GEN_QUERY: &str = "d(A), d(B), d(C), d(D), d(E), d(F)";
/// The churn key-value tenant for interleaved plain queries.
const CHURN_KV_SOURCE: &str = "kv(a, 1). kv(b, 2). kv(c, 3).";

#[derive(Default)]
struct ChurnReport {
    first_answer_ns: u64,
    batches: u64,
    answers: u64,
    busy: u64,
    closed: bool,
}

/// One churn connection: open a cursor on the generator, time the first
/// answer, stream two more batches, interleave a plain tenant query,
/// then either close the cursor or abandon it with the connection.
fn churn_connection(addr: &str, seat: usize) -> std::io::Result<ChurnReport> {
    let mut client = Client::connect(addr)?;
    let mut report = ChurnReport::default();
    let open = Request::Query {
        tenant: Some("churn_gen".to_owned()),
        query: CHURN_GEN_QUERY.to_owned(),
        enumerate_all: false,
        step_budget: None,
        cursor: true,
    };
    let t = Instant::now();
    let id = loop {
        match client.request(&open)? {
            Reply::Ok { body } => {
                let id = body
                    .strip_prefix("cursor=")
                    .and_then(|rest| rest.trim_end().parse::<u64>().ok());
                break id.unwrap_or_else(|| panic!("churn: bad cursor-open body {body:?}"));
            }
            Reply::Snapshot { .. } => panic!("unexpected snapshot reply"),
            Reply::Busy => {
                report.busy += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Reply::Err { class, message } => {
                panic!("churn: cursor open failed ({class}): {message}")
            }
        }
    };
    // The first pull carries the suspended machine's first solution;
    // open-to-here is the first-answer latency.
    let body = churn_next(&mut client, &mut report, id, 1)?;
    report.first_answer_ns = t.elapsed().as_nanos() as u64;
    assert!(
        body.starts_with(&format!("cursor={id} answers=1 done=false")),
        "churn: unexpected first batch {body:?}"
    );
    assert!(
        body.contains("A=0,B=0,C=0,D=0,E=0,F=0"),
        "churn: first answer out of enumeration order: {body:?}"
    );
    for _ in 0..2 {
        churn_next(&mut client, &mut report, id, 100)?;
    }
    // An interleaved plain query on the other tenant, on the same
    // connection, while the cursor sits open.
    match client.query_tenant("churn_kv", "kv(b, V)")? {
        Reply::Ok { body } => assert!(body.contains("V=2"), "churn: kv answered {body:?}"),
        Reply::Snapshot { .. } => panic!("churn: unexpected snapshot reply"),
        Reply::Busy => report.busy += 1,
        Reply::Err { class, message } => panic!("churn: kv query failed ({class}): {message}"),
    }
    if seat.is_multiple_of(2) {
        let reply = client.close_cursor(id)?;
        assert!(reply.is_ok(), "churn: CLOSE answered {reply:?}");
        report.closed = true;
    }
    // Odd seats just drop the connection: the cursor is abandoned and
    // the server reaps it when the socket closes.
    Ok(report)
}

/// One `NEXT` with BUSY backoff; counts the batch and its answers.
fn churn_next(
    client: &mut Client,
    report: &mut ChurnReport,
    id: u64,
    count: u64,
) -> std::io::Result<String> {
    loop {
        match client.next(id, Some(count))? {
            Reply::Ok { body } => {
                report.batches += 1;
                let answers = body
                    .lines()
                    .next()
                    .and_then(|l| l.split(' ').find_map(|f| f.strip_prefix("answers=")))
                    .and_then(|n| n.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("churn: unparseable batch head {body:?}"));
                report.answers += answers;
                return Ok(body);
            }
            Reply::Snapshot { .. } => panic!("unexpected snapshot reply"),
            Reply::Busy => {
                report.busy += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Reply::Err { class, message } => panic!("churn: NEXT failed ({class}): {message}"),
        }
    }
}

fn run_churn(addr: &str, rounds: usize, conns: usize) -> std::io::Result<()> {
    let rounds = rounds.max(1);
    let conns = conns.max(1);
    println!("loadgen: churn scenario against {addr}: {rounds} rounds x {conns} connections");
    let mut publisher = Client::connect(addr)?;
    for (name, source) in [
        ("churn_gen", CHURN_GEN_SOURCE),
        ("churn_kv", CHURN_KV_SOURCE),
    ] {
        let reply = publisher.publish(name, source, None)?;
        assert!(reply.is_ok(), "churn: publish {name} answered {reply:?}");
    }
    let mut jsonl = JsonlWriter::for_bench("serve");
    let wall = Instant::now();
    let mut republishes = 0u64;
    let mut total_first_ns: Vec<u64> = Vec::new();
    let (mut total_answers, mut total_busy) = (0u64, 0u64);
    for round in 0..rounds {
        let reports: Vec<ChurnReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|seat| scope.spawn(move || churn_connection(addr, seat)))
                .collect();
            // Republish storm while the wave streams: live cursors keep
            // serving the image they opened against.
            for _ in 0..5 {
                for (name, source) in [
                    ("churn_gen", CHURN_GEN_SOURCE),
                    ("churn_kv", CHURN_KV_SOURCE),
                ] {
                    let reply = publisher.publish(name, source, None)?;
                    assert!(reply.is_ok(), "churn: republish {name} answered {reply:?}");
                    republishes += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("churn connection thread"))
                .collect::<std::io::Result<_>>()
        })?;
        let mut first_ns: Vec<u64> = reports.iter().map(|r| r.first_answer_ns).collect();
        first_ns.sort_unstable();
        let batches: u64 = reports.iter().map(|r| r.batches).sum();
        let answers: u64 = reports.iter().map(|r| r.answers).sum();
        let busy: u64 = reports.iter().map(|r| r.busy).sum();
        let closed = reports.iter().filter(|r| r.closed).count() as u64;
        let abandoned = conns as u64 - closed;
        println!(
            "round {round}: {conns} connects, {batches} batches / {answers} answers, {closed} closed, {abandoned} abandoned, first answer p50 {} us p99 {} us",
            percentile(&first_ns, 0.50) / 1_000,
            percentile(&first_ns, 0.99) / 1_000
        );
        jsonl.record(
            &Record::row("serve", "churn")
                .u64("round", round as u64)
                .u64("connects", conns as u64)
                .u64("batches", batches)
                .u64("answers", answers)
                .u64("closed", closed)
                .u64("abandoned", abandoned)
                .u64("busy", busy)
                .u64("first_answer_p50_us", percentile(&first_ns, 0.50) / 1_000)
                .u64("first_answer_p99_us", percentile(&first_ns, 0.99) / 1_000),
        );
        total_first_ns.extend(first_ns);
        total_answers += answers;
        total_busy += busy;
    }
    let wall = wall.elapsed();
    total_first_ns.sort_unstable();
    println!(
        "churn: {} cursors over {rounds} rounds in {wall:?}, {total_answers} answers, {total_busy} BUSY backoffs, first answer p50 {} us p99 {} us",
        rounds * conns,
        percentile(&total_first_ns, 0.50) / 1_000,
        percentile(&total_first_ns, 0.99) / 1_000
    );
    jsonl.record(
        &Record::summary("serve", "churn")
            .u64("rounds", rounds as u64)
            .u64("connects", (rounds * conns) as u64)
            .u64("republishes", republishes)
            .u64("answers", total_answers)
            .u64("busy", total_busy)
            .f64("wall_ms", wall.as_secs_f64() * 1_000.0)
            .u64(
                "first_answer_p50_us",
                percentile(&total_first_ns, 0.50) / 1_000,
            )
            .u64(
                "first_answer_p99_us",
                percentile(&total_first_ns, 0.99) / 1_000,
            ),
    );
    jsonl.announce();
    Ok(())
}

/// Prints the per-case latency table and emits one JSONL row per case;
/// `tenant_field` labels rows with the case name under that key (the
/// `mt` scenario's per-tenant rows).
fn report_cases(
    jsonl: &mut JsonlWriter,
    cases: &[ServeCase],
    reports: &[ConnReport],
    wall: Duration,
    tenant_field: Option<&str>,
) {
    let _ = wall;
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "case", "n", "mean_us", "p50_us", "p90_us", "p99_us"
    );
    for (ix, case) in cases.iter().enumerate() {
        let mut ns: Vec<u64> = reports
            .iter()
            .flat_map(|r| &r.latencies_ns)
            .filter(|(c, _)| *c == ix)
            .map(|(_, ns)| *ns)
            .collect();
        ns.sort_unstable();
        if ns.is_empty() {
            continue;
        }
        let mean = ns.iter().sum::<u64>() / ns.len() as u64;
        let (p50, p90, p99) = (
            percentile(&ns, 0.50),
            percentile(&ns, 0.90),
            percentile(&ns, 0.99),
        );
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
            case.name,
            ns.len(),
            mean / 1_000,
            p50 / 1_000,
            p90 / 1_000,
            p99 / 1_000
        );
        let mut row = Record::row("serve", case.name)
            .u64("requests", ns.len() as u64)
            .u64("mean_us", mean / 1_000)
            .u64("p50_us", p50 / 1_000)
            .u64("p90_us", p90 / 1_000)
            .u64("p99_us", p99 / 1_000);
        if let Some(field) = tenant_field {
            row = row.str(field, case.name);
        }
        jsonl.record(&row);
    }
}

/// Prints the aggregate line and emits the JSONL summary row, extending
/// the caller's scenario-specific fields with the shared ones.
fn report_summary(jsonl: &mut JsonlWriter, reports: &[ConnReport], wall: Duration, base: Record) {
    let busy: u64 = reports.iter().map(|r| r.busy).sum();
    let mut all_ns: Vec<u64> = reports
        .iter()
        .flat_map(|r| &r.latencies_ns)
        .map(|(_, ns)| *ns)
        .collect();
    all_ns.sort_unstable();
    let served = all_ns.len() as u64;
    let qps = served as f64 / wall.as_secs_f64();
    println!(
        "served {served} queries in {wall:?} ({qps:.0} q/s), {busy} BUSY backoffs, p50 {} us, p99 {} us",
        percentile(&all_ns, 0.50) / 1_000,
        percentile(&all_ns, 0.99) / 1_000
    );
    jsonl.record(
        &base
            .u64("served", served)
            .u64("busy", busy)
            .f64("wall_ms", wall.as_secs_f64() * 1_000.0)
            .f64("qps", qps)
            .u64("p50_us", percentile(&all_ns, 0.50) / 1_000)
            .u64("p90_us", percentile(&all_ns, 0.90) / 1_000)
            .u64("p99_us", percentile(&all_ns, 0.99) / 1_000),
    );
}

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| {
        eprintln!(
            "usage: loadgen <addr> [connections] [queries-per-connection]\n       loadgen <addr> mt [connections] [active] [queries] [tenants]\n       loadgen <addr> churn [rounds] [connections-per-round]\n       loadgen <addr> shutdown"
        );
        std::process::exit(2);
    });
    let mut args = args.peekable();
    match args.peek().map(String::as_str) {
        Some("shutdown") => {
            let reply = Client::connect(&addr)?.shutdown()?;
            println!("loadgen: shutdown acknowledged ({reply:?})");
            Ok(())
        }
        Some("mt") => {
            args.next();
            let connections = args.and_parse(1000);
            let active = args.and_parse(8);
            let queries = args.and_parse(25);
            let tenants = args.and_parse(4);
            run_multi_tenant(&addr, connections, active, queries, tenants)
        }
        Some("churn") => {
            args.next();
            let rounds = args.and_parse(5);
            let conns = args.and_parse(8);
            run_churn(&addr, rounds, conns)
        }
        _ => {
            let connections = args.and_parse(4);
            let queries = args.and_parse(50);
            run_sessions(&addr, connections, queries)
        }
    }
}

/// Tiny argument helper: parse the next argument or fall back.
trait AndParse {
    fn and_parse(&mut self, default: usize) -> usize;
}

impl<I: Iterator<Item = String>> AndParse for I {
    fn and_parse(&mut self, default: usize) -> usize {
        self.next().and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentiles_of_known_small_vectors() {
        // n=1: every percentile is the one observation.
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        // n=2: p50 is the 1st of 2 (rank ceil(1.0)=1), tails are the max.
        assert_eq!(percentile(&[10, 20], 0.50), 10);
        assert_eq!(percentile(&[10, 20], 0.90), 20);
        assert_eq!(percentile(&[10, 20], 0.99), 20);
        // n=4: ranks ceil(2.0)=2, ceil(3.6)=4, ceil(3.96)=4.
        let four = [10, 20, 30, 40];
        assert_eq!(percentile(&four, 0.50), 20);
        assert_eq!(percentile(&four, 0.90), 40);
        assert_eq!(percentile(&four, 0.99), 40);
        // n=100 of 1..=100: pXX is exactly XX.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 50);
        assert_eq!(percentile(&hundred, 0.90), 90);
        assert_eq!(percentile(&hundred, 0.99), 99);
        assert_eq!(percentile(&hundred, 1.0), 100);
        // The case the old round((n-1)*p) form got wrong: p90 of 7
        // samples is the 7th (rank ceil(6.3)), not the 6th (round(5.4)).
        let seven = [1, 2, 3, 4, 5, 6, 1000];
        assert_eq!(percentile(&seven, 0.90), 1000);
        // Empty input stays a defined 0, not a panic.
        assert_eq!(percentile(&[], 0.99), 0);
    }
}
