//! `loadgen` — drive a running `kcm-serve` with the standard workload
//! and report latency and throughput.
//!
//! ```text
//! loadgen <addr> [connections] [queries-per-connection]
//! loadgen <addr> shutdown                ask the server to drain and stop
//! ```
//!
//! Defaults: 4 connections × 50 queries. Every connection walks the
//! [`kcm_serve::workload::standard`] mix round-robin, consulting each
//! case's program before querying it (a service sees consults *and*
//! queries, so both are in the driven traffic; only the query is timed).
//! `BUSY` answers are counted and retried after a short backoff — that is
//! the protocol's contract.
//!
//! Output: a latency table per workload case (mean/p50/p90/p99 in µs of
//! the query round trip), a throughput summary, and the same rows as
//! JSONL in `target/bench-json/BENCH_serve.jsonl` (`KCM_BENCH_JSON`
//! relocates or disables it, as for every bench driver).

use bench::{JsonlWriter, Record};
use kcm_serve::workload::{standard, ServeCase};
use kcm_serve::{Client, Reply, Request};
use std::time::{Duration, Instant};

/// Latencies are repeated per case across connections; keep them all and
/// read percentiles off the sorted vector.
///
/// Nearest-rank with ceiling: the p-quantile is the smallest element
/// with at least `ceil(p * n)` observations at or below it. The
/// previous form (`round((n - 1) * p)`) could round to an index *below*
/// that rank and under-report tail latency — e.g. p90 of 7 samples
/// landed on the 6th of 7 (`round(5.4) = 5`) where the nearest rank is
/// `ceil(6.3) = 7`, the maximum.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct ConnReport {
    latencies_ns: Vec<(usize, u64)>, // (case index, query latency)
    busy: u64,
}

fn drive_connection(
    addr: &str,
    cases: &[ServeCase],
    first_case: usize,
    queries: usize,
) -> std::io::Result<ConnReport> {
    let mut client = Client::connect(addr)?;
    let mut report = ConnReport {
        latencies_ns: Vec::with_capacity(queries),
        busy: 0,
    };
    for i in 0..queries {
        let case_ix = (first_case + i) % cases.len();
        let case = &cases[case_ix];
        let consulted = client.consult(case.source)?;
        assert!(
            consulted.is_ok(),
            "{}: consult answered {consulted:?}",
            case.name
        );
        let request = Request::Query {
            query: case.query.to_owned(),
            enumerate_all: case.enumerate_all,
            step_budget: None,
        };
        loop {
            let t = Instant::now();
            match client.request(&request)? {
                Reply::Ok { .. } => {
                    report
                        .latencies_ns
                        .push((case_ix, t.elapsed().as_nanos() as u64));
                    break;
                }
                Reply::Busy => {
                    report.busy += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Reply::Err { class, message } => {
                    panic!("{}: query failed ({class}): {message}", case.name)
                }
            }
        }
    }
    Ok(report)
}

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| {
        eprintln!("usage: loadgen <addr> [connections] [queries-per-connection] | <addr> shutdown");
        std::process::exit(2);
    });
    let mut args = args.peekable();
    if args.peek().map(String::as_str) == Some("shutdown") {
        let reply = Client::connect(&addr)?.shutdown()?;
        println!("loadgen: shutdown acknowledged ({reply:?})");
        return Ok(());
    }
    let connections: usize = args.and_parse(4);
    let queries: usize = args.and_parse(50);

    let cases = standard();
    println!(
        "loadgen: {connections} connections x {queries} queries against {addr} ({} cases round-robin)",
        cases.len()
    );
    let wall = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let addr = &addr;
                let cases = &cases;
                scope.spawn(move || drive_connection(addr, cases, c, queries))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect::<std::io::Result<_>>()
    })?;
    let wall = wall.elapsed();

    let mut jsonl = JsonlWriter::for_bench("serve");
    let busy: u64 = reports.iter().map(|r| r.busy).sum();
    let mut all_ns: Vec<u64> = Vec::new();
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "case", "n", "mean_us", "p50_us", "p90_us", "p99_us"
    );
    for (ix, case) in cases.iter().enumerate() {
        let mut ns: Vec<u64> = reports
            .iter()
            .flat_map(|r| &r.latencies_ns)
            .filter(|(c, _)| *c == ix)
            .map(|(_, ns)| *ns)
            .collect();
        ns.sort_unstable();
        all_ns.extend(&ns);
        if ns.is_empty() {
            continue;
        }
        let mean = ns.iter().sum::<u64>() / ns.len() as u64;
        let (p50, p90, p99) = (
            percentile(&ns, 0.50),
            percentile(&ns, 0.90),
            percentile(&ns, 0.99),
        );
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
            case.name,
            ns.len(),
            mean / 1_000,
            p50 / 1_000,
            p90 / 1_000,
            p99 / 1_000
        );
        jsonl.record(
            &Record::row("serve", case.name)
                .u64("requests", ns.len() as u64)
                .u64("mean_us", mean / 1_000)
                .u64("p50_us", p50 / 1_000)
                .u64("p90_us", p90 / 1_000)
                .u64("p99_us", p99 / 1_000),
        );
    }
    all_ns.sort_unstable();
    let served = all_ns.len() as u64;
    let qps = served as f64 / wall.as_secs_f64();
    println!(
        "served {served} queries in {wall:?} ({qps:.0} q/s), {busy} BUSY backoffs, p50 {} us, p99 {} us",
        percentile(&all_ns, 0.50) / 1_000,
        percentile(&all_ns, 0.99) / 1_000
    );
    jsonl.record(
        &Record::summary("serve", "all")
            .u64("connections", connections as u64)
            .u64("served", served)
            .u64("busy", busy)
            .f64("wall_ms", wall.as_secs_f64() * 1_000.0)
            .f64("qps", qps)
            .u64("p50_us", percentile(&all_ns, 0.50) / 1_000)
            .u64("p90_us", percentile(&all_ns, 0.90) / 1_000)
            .u64("p99_us", percentile(&all_ns, 0.99) / 1_000),
    );
    jsonl.announce();
    Ok(())
}

/// Tiny argument helper: parse the next argument or fall back.
trait AndParse {
    fn and_parse(&mut self, default: usize) -> usize;
}

impl<I: Iterator<Item = String>> AndParse for I {
    fn and_parse(&mut self, default: usize) -> usize {
        self.next().and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentiles_of_known_small_vectors() {
        // n=1: every percentile is the one observation.
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        // n=2: p50 is the 1st of 2 (rank ceil(1.0)=1), tails are the max.
        assert_eq!(percentile(&[10, 20], 0.50), 10);
        assert_eq!(percentile(&[10, 20], 0.90), 20);
        assert_eq!(percentile(&[10, 20], 0.99), 20);
        // n=4: ranks ceil(2.0)=2, ceil(3.6)=4, ceil(3.96)=4.
        let four = [10, 20, 30, 40];
        assert_eq!(percentile(&four, 0.50), 20);
        assert_eq!(percentile(&four, 0.90), 40);
        assert_eq!(percentile(&four, 0.99), 40);
        // n=100 of 1..=100: pXX is exactly XX.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 50);
        assert_eq!(percentile(&hundred, 0.90), 90);
        assert_eq!(percentile(&hundred, 0.99), 99);
        assert_eq!(percentile(&hundred, 1.0), 100);
        // The case the old round((n-1)*p) form got wrong: p90 of 7
        // samples is the 7th (rank ceil(6.3)), not the 6th (round(5.4)).
        let seven = [1, 2, 3, 4, 5, 6, 1000];
        assert_eq!(percentile(&seven, 0.90), 1000);
        // Empty input stays a defined 0, not a panic.
        assert_eq!(percentile(&[], 0.99), 0);
    }
}
