//! `kcm-serve` — a concurrent Prolog query service on the KCM simulator.
//!
//! The paper's KCM is a single back-end processor coupled to one
//! workstation through a host interface (§1): the host ships compiled
//! code and queries down, the KCM streams answers back. This crate is
//! that host interface generalized to many concurrent callers: a TCP
//! front end speaking a simple length-delimited text protocol
//! ([`protocol`]), a bounded request queue with explicit backpressure
//! (`BUSY` instead of unbounded queueing), per-request step deadlines
//! (`MachineConfig::step_budget`), and a pool of isolated worker
//! sessions doing the actual knowledge crunching.
//!
//! Pieces:
//!
//! * [`protocol`] — framing, request/reply grammar, outcome rendering;
//! * [`server`] — the accept loop, worker pool and metrics;
//! * [`client`] — a blocking client for the protocol;
//! * [`workload`] — the deterministic query mix `loadgen` and the tests
//!   drive.
//!
//! Binaries: `kcm-serve` (the server) and `loadgen` (a load generator
//! that reports a latency histogram and writes `BENCH_serve.jsonl`).
//!
//! # Examples
//!
//! ```
//! use kcm_serve::{Client, Reply, ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! client.consult("p(1). p(2).")?;
//! let reply = client.query_all("p(X)")?;
//! assert!(matches!(&reply, Reply::Ok { body } if body.contains("solutions=2")));
//! client.shutdown()?;
//! handle.join().expect("server thread")?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod workload;

pub use client::Client;
pub use protocol::{render_outcome, Reply, Request};
pub use server::{ServeConfig, ServeMetrics, Server};
