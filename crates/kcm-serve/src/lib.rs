//! `kcm-serve` — a concurrent Prolog query service on the KCM simulator.
//!
//! The paper's KCM is a single back-end processor coupled to one
//! workstation through a host interface (§1): the host ships compiled
//! code and queries down, the KCM streams answers back. This crate is
//! that host interface generalized to many concurrent callers: a TCP
//! front end speaking a simple length-delimited text protocol
//! ([`protocol`]), a bounded request queue with explicit backpressure
//! (`BUSY` instead of unbounded queueing), per-request step deadlines
//! (`MachineConfig::step_budget`), and a pool of isolated worker
//! sessions doing the actual knowledge crunching.
//!
//! Since the registry PR the service is multi-tenant: `PUBLISH <name>`
//! installs a compiled program into a shared [`kcm_system::registry`]
//! slot, and `QUERY @<name> ...` serves it to any connection — many
//! knowledge bases on one machine, each an immutable `Arc`'d image with
//! its own stats and optional step budget. The front end is a single
//! nonblocking readiness loop ([`poll`] + [`server`]): connections cost
//! a buffer, not a thread, so the server's thread count is independent
//! of its connection count.
//!
//! Pieces:
//!
//! * [`protocol`] — framing (incl. the incremental [`protocol::FrameBuf`]
//!   decoder), request/reply grammar, outcome rendering;
//! * [`poll`] — a zero-dependency readiness API (epoll on Linux, poll(2)
//!   elsewhere on unix);
//! * [`server`] — the event loop, program registry wiring, worker pool
//!   and metrics;
//! * [`client`] — a blocking client for the protocol;
//! * [`workload`] — the deterministic query mix `loadgen` and the tests
//!   drive.
//!
//! Binaries: `kcm-serve` (the server) and `loadgen` (a load generator
//! that reports a latency histogram and writes `BENCH_serve.jsonl`).
//!
//! # Examples
//!
//! ```
//! use kcm_serve::{Client, Reply, ServeConfig, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! client.consult("p(1). p(2).")?;
//! let reply = client.query_all("p(X)")?;
//! assert!(matches!(&reply, Reply::Ok { body } if body.contains("solutions=2")));
//! client.shutdown()?;
//! handle.join().expect("server thread")?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod workload;

pub use client::Client;
pub use protocol::{render_outcome, FrameBuf, Reply, Request};
pub use server::{ServeConfig, ServeMetrics, Server};
