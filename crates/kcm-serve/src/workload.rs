//! The fixed serve workload: PLM-suite programs paired with *inner*
//! queries (the suite's own drivers are all `main`/`main_star`, which
//! tells a service nothing about mixed traffic). Deterministic by
//! construction, so `loadgen` runs and the loopback byte-identity test
//! draw from the same set.

use kcm_suite::programs;
use kcm_system::{Kcm, QueryOpts, Tier};

/// One workload case: a suite program and an inner query against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCase {
    /// Suite program name.
    pub name: &'static str,
    /// Program source (the suite's, verbatim).
    pub source: &'static str,
    /// Inner query run against it.
    pub query: &'static str,
    /// Whether to enumerate all solutions.
    pub enumerate_all: bool,
}

/// The standard serve workload over the PLM suite.
pub fn standard() -> Vec<ServeCase> {
    [
        ("con1", "con([a, b, c, d, e], [f], X)", false),
        ("con6", "run6(X)", false),
        ("nrev1", "nrev([1,2,3,4,5,6,7,8,9,10], R)", false),
        ("pri2", "primes(30, Ps)", false),
        ("qs4", "qsort([3,1,4,1,5,9,2,6], R)", false),
        ("queens", "queens(4, Qs)", true),
        ("hanoi", "move_star(4, left, centre, right)", false),
        ("palin25", "serialise(\"ABA\", R)", false),
    ]
    .into_iter()
    .map(|(name, query, enumerate_all)| ServeCase {
        name,
        source: programs::program(name)
            .unwrap_or_else(|| panic!("{name} is a suite program"))
            .source,
        query,
        enumerate_all,
    })
    .collect()
}

/// The reply body a server must produce for `case` when serving on
/// `tier`: [`crate::render_outcome`] over a direct, in-process
/// [`Kcm::query`]. The multi-tenant load generator and the loopback
/// tests both compare served bytes against this oracle — any divergence
/// is a serving bug, not workload noise. (A step budget large enough for
/// the query to complete does not change the body, so the oracle holds
/// under the server's default budget too.)
pub fn direct_body(case: &ServeCase, tier: Tier) -> String {
    let mut kcm = Kcm::new();
    kcm.load(case.source)
        .unwrap_or_else(|e| panic!("{}: direct consult: {e}", case.name));
    let opts = QueryOpts {
        enumerate_all: case.enumerate_all,
        tier,
        ..QueryOpts::default()
    };
    let outcome = kcm
        .query(case.query, &opts)
        .unwrap_or_else(|e| panic!("{}: direct query: {e}", case.name));
    crate::render_outcome(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_runs_directly_and_succeeds() {
        for case in standard() {
            let mut kcm = Kcm::new();
            kcm.load(case.source)
                .unwrap_or_else(|e| panic!("{}: consult: {e}", case.name));
            let opts = QueryOpts {
                enumerate_all: case.enumerate_all,
                ..QueryOpts::default()
            };
            let o = kcm
                .query(case.query, &opts)
                .unwrap_or_else(|e| panic!("{}: query: {e}", case.name));
            assert!(o.success, "{}: {}", case.name, case.query);
        }
    }

    #[test]
    fn direct_body_oracle_renders_native_outcomes() {
        let cases = standard();
        let body = direct_body(&cases[0], Tier::Native);
        assert!(body.starts_with("success=true"), "{body}");
        assert!(
            body.contains("cycles=0"),
            "native tier has no clock: {body}"
        );
        let cycle = direct_body(&cases[0], Tier::Cycle);
        assert!(!cycle.contains("cycles=0"), "cycle tier counts: {cycle}");
    }
}
