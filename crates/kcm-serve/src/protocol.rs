//! The wire protocol: length-delimited UTF-8 text frames.
//!
//! Both directions use the same framing:
//!
//! ```text
//! frame   := length "\n" payload
//! length  := decimal byte length of payload
//! ```
//!
//! Request payloads (first word selects the command):
//!
//! ```text
//! "CONSULT\n" source          consult a program for this connection
//! "QUERY "    [opts] query    run query, first solution
//! "QUERYALL " [opts] query    run query, every solution
//! "STATS"                     server-wide aggregate metrics
//! "SHUTDOWN"                  drain and stop the server
//! opts    := "BUDGET " steps " "
//! steps   := plain decimal digits, at least 1, at most u64::MAX
//! ```
//!
//! `steps` is deliberately strict: no sign (`+10` is not "10"), no
//! leading/extra whitespace, no value a u64 cannot hold, and never 0 —
//! a zero budget would silently reject every query, which is always a
//! client bug, so it is a protocol error rather than a degenerate run.
//!
//! Reply payloads (first line is the status):
//!
//! ```text
//! "OK\n" body                 consult: empty; query: rendered outcome;
//!                             stats: "key=value" lines
//! "BUSY\n"                    request queue full — retry later
//! "ERR " class ": " message   error, classed as in kcm_system::error_class
//! ```

use kcm_system::Outcome;
use std::io::{self, BufRead, Write};

/// Upper bound on one frame's payload; a frame this large is a protocol
/// error, not a workload.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one length-delimited frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    // One write for the whole frame: a separate length-line write would
    // interact with Nagle + delayed ACK into a ~40ms stall per request.
    let mut frame = String::with_capacity(payload.len() + 12);
    frame.push_str(&payload.len().to_string());
    frame.push('\n');
    frame.push_str(payload);
    w.write_all(frame.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF before the length line.
///
/// # Errors
///
/// Transport errors, oversized or malformed frames, and EOF mid-frame.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let len: usize = line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad length {line:?}")))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Consult a program (replacing this connection's program state).
    Consult {
        /// Prolog source text.
        source: String,
    },
    /// Run a query against the connection's consulted program.
    Query {
        /// Query text, as accepted by `Kcm::query`.
        query: String,
        /// Enumerate every solution instead of stopping at the first.
        enumerate_all: bool,
        /// Per-request step budget overriding the server default.
        step_budget: Option<u64>,
    },
    /// Fetch server-wide aggregate metrics.
    Stats,
    /// Drain in-flight requests and stop the server.
    Shutdown,
}

/// Parses a `BUDGET` step count under the strict grammar: plain decimal
/// digits only (`u64::from_str` would admit a `+` sign), fitting in a
/// u64, and never 0.
fn parse_budget(steps: &str) -> Result<u64, String> {
    if steps.is_empty() || !steps.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad BUDGET count {steps:?}: want decimal digits"));
    }
    let n: u64 = steps
        .parse()
        .map_err(|_| format!("bad BUDGET count {steps:?}: exceeds u64"))?;
    if n == 0 {
        return Err("bad BUDGET count 0: a zero budget rejects every query".to_owned());
    }
    Ok(n)
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Consult { source } => format!("CONSULT\n{source}"),
            Request::Query {
                query,
                enumerate_all,
                step_budget,
            } => {
                let verb = if *enumerate_all { "QUERYALL" } else { "QUERY" };
                match step_budget {
                    Some(steps) => format!("{verb} BUDGET {steps} {query}"),
                    None => format!("{verb} {query}"),
                }
            }
            Request::Stats => "STATS".to_owned(),
            Request::Shutdown => "SHUTDOWN".to_owned(),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation.
    pub fn parse(payload: &str) -> Result<Request, String> {
        if let Some(source) = payload.strip_prefix("CONSULT\n") {
            return Ok(Request::Consult {
                source: source.to_owned(),
            });
        }
        for (verb, enumerate_all) in [("QUERY ", false), ("QUERYALL ", true)] {
            let Some(rest) = payload.strip_prefix(verb) else {
                continue;
            };
            let (step_budget, query) = match rest.strip_prefix("BUDGET ") {
                Some(after) => {
                    let (steps, query) = after
                        .split_once(' ')
                        .ok_or_else(|| "BUDGET needs a count and a query".to_owned())?;
                    (Some(parse_budget(steps)?), query)
                }
                None => (None, rest),
            };
            if query.is_empty() {
                return Err("empty query".to_owned());
            }
            return Ok(Request::Query {
                query: query.to_owned(),
                enumerate_all,
                step_budget,
            });
        }
        match payload {
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown command {:?}",
                other.lines().next().unwrap_or_default()
            )),
        }
    }
}

/// One parsed server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The request succeeded; `body` is command-specific.
    Ok {
        /// Rendered outcome, metrics lines, or empty.
        body: String,
    },
    /// The request queue was full; the client should back off and retry.
    Busy,
    /// The request failed.
    Err {
        /// Stable error class (`kcm_system::error_class`, plus
        /// `"protocol"` for malformed frames).
        class: String,
        /// Human-readable message.
        message: String,
    },
}

impl Reply {
    /// Encodes the reply as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Reply::Ok { body } => format!("OK\n{body}"),
            Reply::Busy => "BUSY\n".to_owned(),
            Reply::Err { class, message } => format!("ERR {class}: {message}\n"),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a description when the payload fits no reply form.
    pub fn parse(payload: &str) -> Result<Reply, String> {
        if let Some(body) = payload.strip_prefix("OK\n") {
            return Ok(Reply::Ok {
                body: body.to_owned(),
            });
        }
        if payload == "BUSY\n" {
            return Ok(Reply::Busy);
        }
        if let Some(rest) = payload.strip_prefix("ERR ") {
            let (class, message) = rest
                .split_once(": ")
                .ok_or_else(|| "ERR reply without a class".to_owned())?;
            return Ok(Reply::Err {
                class: class.to_owned(),
                message: message.trim_end_matches('\n').to_owned(),
            });
        }
        Err(format!(
            "unknown reply {:?}",
            payload.lines().next().unwrap_or_default()
        ))
    }

    /// Whether this is an `OK` reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok { .. })
    }
}

/// Renders a query outcome as the `OK` reply body. The loopback tests
/// compare this rendering of a served outcome byte-for-byte against the
/// same rendering of a direct [`kcm_system::Kcm::query`] outcome, so
/// everything observable goes in: success, solutions (in enumeration
/// order), `write/1` output, and the simulation counters.
pub fn render_outcome(o: &Outcome) -> String {
    let mut s = format!(
        "success={} solutions={} inferences={} cycles={}\n",
        o.success,
        o.solutions.len(),
        o.stats.inferences,
        o.stats.cycles
    );
    for sol in &o.solutions {
        let line = sol
            .iter()
            .map(|(n, t)| format!("{n}={t}"))
            .collect::<Vec<_>>()
            .join(",");
        s.push_str(&line);
        s.push('\n');
    }
    s.push_str(&format!("output={:?}\n", o.output));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "QUERY p(X)").expect("write");
        write_frame(&mut wire, "").expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some("QUERY p(X)")
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).expect("read"), None);
    }

    #[test]
    fn frames_carry_newlines_in_payloads() {
        let mut wire = Vec::new();
        let program = "CONSULT\np(1).\np(2).\n";
        write_frame(&mut wire, program).expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(program));
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut r = BufReader::new(b"10\nshort".as_slice());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Consult {
                source: "p(1).\np(2).".to_owned(),
            },
            Request::Query {
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: None,
            },
            Request::Query {
                query: "serialise(\"ABA\", R)".to_owned(),
                enumerate_all: true,
                step_budget: Some(10_000),
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.encode()).expect("parse"), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in ["QUERY ", "QUERY BUDGET x p", "QUERY BUDGET 5", "NOPE", ""] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn budget_counts_follow_the_strict_grammar() {
        // Rejected: zero, signs (u64::from_str would take "+5"), empty,
        // embedded garbage, double spaces, and counts beyond u64.
        for bad in [
            "QUERYALL BUDGET 0 p(X)",
            "QUERY BUDGET +5 p(X)",
            "QUERY BUDGET -5 p(X)",
            "QUERY BUDGET  5 p(X)",
            "QUERY BUDGET 5x p(X)",
            "QUERY BUDGET 5_000 p(X)",
            "QUERY BUDGET 99999999999999999999999999 p(X)",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        // Accepted: any positive count up to u64::MAX; the query keeps
        // everything after the single separating space.
        assert_eq!(
            Request::parse("QUERY BUDGET 1 p(X)").expect("min budget"),
            Request::Query {
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: Some(1),
            }
        );
        assert_eq!(
            Request::parse(&format!("QUERYALL BUDGET {} p(a, b)", u64::MAX)).expect("max budget"),
            Request::Query {
                query: "p(a, b)".to_owned(),
                enumerate_all: true,
                step_budget: Some(u64::MAX),
            }
        );
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Ok {
                body: "success=true solutions=1 inferences=3 cycles=40\nX=1\noutput=\"\"\n"
                    .to_owned(),
            },
            Reply::Busy,
            Reply::Err {
                class: "budget".to_owned(),
                message: "step budget exhausted after 10001 steps".to_owned(),
            },
        ] {
            assert_eq!(Reply::parse(&reply.encode()).expect("parse"), reply);
        }
    }
}
