//! The wire protocol: length-delimited frames, text commands, with two
//! binary-bodied forms for program artifacts.
//!
//! Both directions use the same framing:
//!
//! ```text
//! frame   := length "\n" payload
//! length  := decimal byte length of payload
//! ```
//!
//! Payloads are UTF-8 text except for the two artifact forms: the body
//! of a `PUBLISH … SNAPSHOT` request and the body of a `SNAPSHOT`
//! reply carry raw [`kcm_arch::snapshot`] bytes. A non-UTF-8 payload
//! anywhere else is a classed protocol error, not a disconnect.
//!
//! Request payloads (first word selects the command):
//!
//! ```text
//! "PUBLISH " name [" BUDGET " steps] "\n" source
//!                             publish source as the named shared program
//! "PUBLISH " name [" BUDGET " steps] " SNAPSHOT\n" bytes
//!                             publish a binary snapshot artifact
//! "CONSULT\n" source          consult a program for this connection
//! "QUERY "    [tenant] [opts] query    run query, first solution
//! "QUERYALL " [tenant] [opts] query    run query, every solution
//! "SNAPSHOT @" name           export the named program as a snapshot
//! "ASSERT @" name " " clause  add one clause to the named program
//! "RETRACT @" name " " clause retract the first matching clause
//! "NEXT " id [" " count]      pull the next answer batch from a cursor
//! "CLOSE " id                 release a cursor
//! "STATS"                     server-wide and per-tenant metrics
//! "SHUTDOWN"                  drain and stop the server
//! tenant  := "@" name " "
//! name    := [A-Za-z_] [A-Za-z0-9_-]{0,63}
//! opts    := ["BUDGET " steps " "] ["CURSOR "]
//! steps   := plain decimal digits, at least 1, at most u64::MAX
//! count   := plain decimal digits, at least 1, at most u64::MAX
//! id      := plain decimal digits, at most u64::MAX
//! ```
//!
//! `SNAPSHOT @name` replies with the binary artifact form below; the
//! bytes are exactly what `PUBLISH … SNAPSHOT` accepts (and what
//! `kcm_arch::snapshot::load` restores), so a knowledge base round-trips
//! through the wire without ever reparsing source. A snapshot larger
//! than [`MAX_FRAME`] cannot be carried — million-fact images ship by
//! file, not by frame. `ASSERT`/`RETRACT` update the named program
//! copy-on-write: queries already running keep their image; the next
//! `QUERY @name` sees the new version (the reply's `version=` line).
//! The clause text follows the same grammar `CONSULT` accepts, without
//! the trailing period.
//!
//! A query without a `@name` runs against the connection's own
//! `CONSULT`ed program (the single-host session mode); with one it runs
//! against the shared program published under that name. `@` cannot
//! begin a Prolog query term under the reader's grammar, so the form is
//! unambiguous.
//!
//! `QUERY ... CURSOR ` opens a *cursor* instead of running the query: the
//! reply is `cursor=<id>`, and the enumeration streams on demand through
//! `NEXT <id> [count]` — each pull resumes the suspended machine through
//! its normal backtrack path and returns up to `count` answers (default
//! 1, clamped to the server's batch cap). The `NEXT` reply body starts
//! `cursor=<id> answers=<k> done=<bool> inferences=<n> cycles=<n>`
//! followed by one line per answer and the slice's `output=` line; when
//! `done=true` the enumeration is exhausted and the cursor is already
//! released. `CLOSE <id>` releases a cursor early. `CURSOR` composes
//! with `@name` and `BUDGET` (the budget bounds each pull's slice, not
//! the whole enumeration) but is meaningless on `QUERYALL`, where it is
//! rejected. Cursor ids are never reused, so a `NEXT` on a closed,
//! exhausted or reaped cursor is an `ERR protocol` — never someone
//! else's stream.
//!
//! `steps` is deliberately strict: no sign (`+10` is not "10"), no
//! leading/extra whitespace, no value a u64 cannot hold, and never 0 —
//! a zero budget would silently reject every query, which is always a
//! client bug, so it is a protocol error rather than a degenerate run.
//!
//! Reply payloads (first line is the status):
//!
//! ```text
//! "OK\n" body                 consult: empty; publish: name/version
//!                             lines; query: rendered outcome; stats:
//!                             "key=value" lines
//! "SNAPSHOT\n" bytes          binary snapshot artifact (SNAPSHOT @name)
//! "BUSY\n"                    request queue full — retry later
//! "ERR " class ": " message   error, classed as in kcm_system::error_class
//! ```
//!
//! # Framing slow readers
//!
//! [`read_frame`] is for *blocking* streams (the [`crate::Client`]):
//! it must never be used on a socket with a read timeout, because a
//! timeout firing mid-frame loses whatever bytes the frame had already
//! consumed and desynchronizes the stream. The server's readiness loop
//! instead decodes through [`FrameBuf`], which owns the partial-frame
//! state explicitly: bytes are fed in whenever the socket is readable,
//! frames pop out only when complete, and a length line or payload
//! split across arbitrarily many reads — the slow-client case — is
//! correct by construction.

use kcm_system::{Outcome, RunStats, Solution};
use std::io::{self, BufRead, Write};

/// Upper bound on one frame's payload; a frame this large is a protocol
/// error, not a workload.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Upper bound on the length *line* itself (digits + newline). A frame
/// length needs at most 20 digits to express `u64::MAX`; a longer line
/// is garbage, and bounding it keeps an unframed byte stream from
/// buffering without limit while [`FrameBuf`] waits for a newline.
pub const MAX_LENGTH_LINE: usize = 32;

/// Longest accepted tenant name.
pub const MAX_NAME: usize = 64;

/// Validates a tenant name: `[A-Za-z_][A-Za-z0-9_-]{0,63}`.
///
/// # Errors
///
/// Describes the malformation (empty, too long, bad character).
pub fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("empty program name".to_owned());
    }
    if name.len() > MAX_NAME {
        return Err(format!(
            "program name of {} bytes exceeds the {MAX_NAME}-byte cap",
            name.len()
        ));
    }
    let mut bytes = name.bytes();
    let first = bytes.next().expect("nonempty");
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return Err(format!("bad program name {name:?}: must start [A-Za-z_]"));
    }
    if !bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
        return Err(format!(
            "bad program name {name:?}: want [A-Za-z0-9_-] after the first character"
        ));
    }
    Ok(())
}

/// Writes one length-delimited frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: impl AsRef<[u8]>) -> io::Result<()> {
    // One write for the whole frame: a separate length-line write would
    // interact with Nagle + delayed ACK into a ~40ms stall per request.
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// The on-wire bytes of one frame (length line + payload), as written by
/// [`write_frame`].
pub fn encode_frame(payload: impl AsRef<[u8]>) -> Vec<u8> {
    let payload = payload.as_ref();
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(payload.len().to_string().as_bytes());
    frame.push(b'\n');
    frame.extend_from_slice(payload);
    frame
}

/// Reads one frame from a **blocking** stream; `Ok(None)` on a clean EOF
/// before the length line.
///
/// The payload comes back as raw bytes: framing is 8-bit clean so binary
/// snapshot artifacts can travel; UTF-8 is a *command*-level rule,
/// enforced by [`Request::parse`]/[`Reply::parse`].
///
/// Not safe on a stream with a read timeout: a timeout mid-frame loses
/// the already-consumed bytes (see the module docs). Nonblocking readers
/// decode through [`FrameBuf`] instead.
///
/// # Errors
///
/// Transport errors, oversized or malformed frames, and EOF mid-frame.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let len = parse_length_line(&line)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

fn parse_length_line(line: &str) -> io::Result<usize> {
    let len: usize = line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad length {line:?}")))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    Ok(len)
}

/// An incremental frame decoder for nonblocking readers.
///
/// Feed raw bytes with [`FrameBuf::feed`] whenever the transport has
/// them; pop complete frames with [`FrameBuf::next_frame`]. All partial
/// state — half a length line, a payload still in flight — lives in the
/// buffer between calls, so it does not matter how the byte stream is
/// sliced: one byte at a time with arbitrary pauses decodes identically
/// to one big read. This is the structural fix for the slow-client
/// desync the old timeout-driven `read_frame` loop suffered.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Payload length of the current frame, once its length line has
    /// fully arrived (the line itself is already drained from `buf`).
    pending: Option<usize>,
}

impl FrameBuf {
    /// An empty decoder.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends transport bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any undecoded bytes (a partial frame) are buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.pending.is_some()
    }

    /// Pops the next complete frame, or `Ok(None)` when more bytes are
    /// needed. Payloads are raw bytes, exactly as [`read_frame`] returns
    /// them; UTF-8 is enforced per command by [`Request::parse`].
    ///
    /// # Errors
    ///
    /// Malformed or oversized length lines, with the same
    /// classifications as [`read_frame`]. The decoder is not usable
    /// after an error (framing has no resynchronization point — the
    /// connection is the unit of failure).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.pending.is_none() {
            let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
                if self.buf.len() > MAX_LENGTH_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "length line exceeds the cap without a newline",
                    ));
                }
                return Ok(None);
            };
            let line = std::str::from_utf8(&self.buf[..nl])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            self.pending = Some(parse_length_line(line)?);
            self.buf.drain(..=nl);
        }
        let len = self.pending.expect("set above or on a previous call");
        if self.buf.len() < len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        self.pending = None;
        Ok(Some(payload))
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Publish a program into the server's shared registry.
    Publish {
        /// Registry name to publish under.
        name: String,
        /// Prolog source text.
        source: String,
        /// Per-tenant step budget for queries that don't carry their own
        /// `BUDGET`.
        step_budget: Option<u64>,
    },
    /// Publish a binary snapshot artifact into the shared registry
    /// (`PUBLISH <name> SNAPSHOT`): the body is [`kcm_arch::snapshot`]
    /// bytes instead of source text, restored without recompiling.
    PublishSnapshot {
        /// Registry name to publish under.
        name: String,
        /// The serialized program artifact.
        snapshot: Vec<u8>,
        /// Per-tenant step budget for queries that don't carry their own
        /// `BUDGET`.
        step_budget: Option<u64>,
    },
    /// Export the named published program as a binary snapshot artifact
    /// (`SNAPSHOT @name`); the reply is [`Reply::Snapshot`].
    Snapshot {
        /// Registry name to export.
        name: String,
    },
    /// Add one clause to the named published program (`ASSERT @name
    /// <clause>`), copy-on-write: the tenant's version bumps and the
    /// next query sees the clause without a re-publish.
    Assert {
        /// Registry name to update.
        name: String,
        /// The clause text, without the trailing period.
        clause: String,
    },
    /// Retract the first clause equal to the given one from the named
    /// published program (`RETRACT @name <clause>`), copy-on-write.
    Retract {
        /// Registry name to update.
        name: String,
        /// The clause text, without the trailing period.
        clause: String,
    },
    /// Consult a program (replacing this connection's program state).
    Consult {
        /// Prolog source text.
        source: String,
    },
    /// Run a query against a published program (`tenant` set) or the
    /// connection's consulted program (`tenant` empty).
    Query {
        /// Registry name to run against, or `None` for session mode.
        tenant: Option<String>,
        /// Query text, as accepted by `Kcm::query`.
        query: String,
        /// Enumerate every solution instead of stopping at the first.
        enumerate_all: bool,
        /// Per-request step budget overriding the tenant and server
        /// defaults. For a cursor, bounds each pull's slice.
        step_budget: Option<u64>,
        /// Open a cursor over the enumeration instead of running the
        /// query (the `CURSOR` option; `QUERY` only).
        cursor: bool,
    },
    /// Pull the next answer batch from an open cursor.
    Next {
        /// Cursor id from the `cursor=<id>` open reply.
        id: u64,
        /// Batch size; `None` means 1. Clamped to the server's cap.
        count: Option<u64>,
    },
    /// Release an open cursor.
    Close {
        /// Cursor id from the `cursor=<id>` open reply.
        id: u64,
    },
    /// Fetch server-wide aggregate and per-tenant metrics.
    Stats,
    /// Drain in-flight requests and stop the server.
    Shutdown,
}

/// Parses a `BUDGET` step count under the strict grammar: plain decimal
/// digits only (`u64::from_str` would admit a `+` sign), fitting in a
/// u64, and never 0.
fn parse_budget(steps: &str) -> Result<u64, String> {
    if steps.is_empty() || !steps.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad BUDGET count {steps:?}: want decimal digits"));
    }
    let n: u64 = steps
        .parse()
        .map_err(|_| format!("bad BUDGET count {steps:?}: exceeds u64"))?;
    if n == 0 {
        return Err("bad BUDGET count 0: a zero budget rejects every query".to_owned());
    }
    Ok(n)
}

/// Parses a cursor id: plain decimal digits fitting a u64 (same
/// strictness as [`parse_budget`]; 0 is syntactically fine — it is just
/// never allocated, so it resolves to "unknown cursor" downstream).
fn parse_cursor_id(id: &str) -> Result<u64, String> {
    if id.is_empty() || !id.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad cursor id {id:?}: want decimal digits"));
    }
    id.parse()
        .map_err(|_| format!("bad cursor id {id:?}: exceeds u64"))
}

/// Parses a `NEXT` batch count: like [`parse_budget`], a zero batch is
/// always a client bug and therefore a protocol error.
fn parse_batch_count(count: &str) -> Result<u64, String> {
    if count.is_empty() || !count.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad NEXT count {count:?}: want decimal digits"));
    }
    let n: u64 = count
        .parse()
        .map_err(|_| format!("bad NEXT count {count:?}: exceeds u64"))?;
    if n == 0 {
        return Err("bad NEXT count 0: an empty batch pulls nothing".to_owned());
    }
    Ok(n)
}

impl Request {
    /// Encodes the request as a frame payload. Bytes, not a string: the
    /// `PUBLISH … SNAPSHOT` body is a binary artifact; every other
    /// request is UTF-8 text.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Publish {
                name,
                source,
                step_budget,
            } => match step_budget {
                Some(steps) => format!("PUBLISH {name} BUDGET {steps}\n{source}"),
                None => format!("PUBLISH {name}\n{source}"),
            },
            Request::PublishSnapshot {
                name,
                snapshot,
                step_budget,
            } => {
                let header = match step_budget {
                    Some(steps) => format!("PUBLISH {name} BUDGET {steps} SNAPSHOT\n"),
                    None => format!("PUBLISH {name} SNAPSHOT\n"),
                };
                let mut payload = header.into_bytes();
                payload.extend_from_slice(snapshot);
                return payload;
            }
            Request::Snapshot { name } => format!("SNAPSHOT @{name}"),
            Request::Assert { name, clause } => format!("ASSERT @{name} {clause}"),
            Request::Retract { name, clause } => format!("RETRACT @{name} {clause}"),
            Request::Consult { source } => format!("CONSULT\n{source}"),
            Request::Query {
                tenant,
                query,
                enumerate_all,
                step_budget,
                cursor,
            } => {
                let verb = if *enumerate_all { "QUERYALL" } else { "QUERY" };
                let mut s = String::from(verb);
                s.push(' ');
                if let Some(name) = tenant {
                    s.push('@');
                    s.push_str(name);
                    s.push(' ');
                }
                if let Some(steps) = step_budget {
                    s.push_str(&format!("BUDGET {steps} "));
                }
                if *cursor {
                    s.push_str("CURSOR ");
                }
                s.push_str(query);
                s
            }
            Request::Next { id, count } => match count {
                Some(n) => format!("NEXT {id} {n}"),
                None => format!("NEXT {id}"),
            },
            Request::Close { id } => format!("CLOSE {id}"),
            Request::Stats => "STATS".to_owned(),
            Request::Shutdown => "SHUTDOWN".to_owned(),
        }
        .into_bytes()
    }

    /// Parses a frame payload (raw bytes; `&str` coerces through
    /// `AsRef`). `PUBLISH … SNAPSHOT` keeps its body as bytes; every
    /// other command must be UTF-8 — a violation is a parse error (and
    /// so a classed `ERR protocol` reply), never a dropped connection.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation.
    pub fn parse(payload: impl AsRef<[u8]>) -> Result<Request, String> {
        Request::parse_bytes(payload.as_ref())
    }

    fn parse_bytes(payload: &[u8]) -> Result<Request, String> {
        // PUBLISH first, at the byte level: its body may be a binary
        // artifact, so only the header line is held to UTF-8.
        if let Some(rest) = payload.strip_prefix(b"PUBLISH ") {
            let nl = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| "PUBLISH needs a source body after the name line".to_owned())?;
            let header = std::str::from_utf8(&rest[..nl])
                .map_err(|_| "PUBLISH header line is not valid UTF-8".to_owned())?;
            let body = &rest[nl + 1..];
            let (header, is_snapshot) = match header.strip_suffix(" SNAPSHOT") {
                Some(header) => (header, true),
                None => (header, false),
            };
            let (name, step_budget) = match header.split_once(' ') {
                None => (header, None),
                Some((name, opts)) => {
                    let steps = opts
                        .strip_prefix("BUDGET ")
                        .ok_or_else(|| format!("bad PUBLISH options {opts:?}: want BUDGET n"))?;
                    (name, Some(parse_budget(steps)?))
                }
            };
            validate_name(name)?;
            if is_snapshot {
                return Ok(Request::PublishSnapshot {
                    name: name.to_owned(),
                    snapshot: body.to_vec(),
                    step_budget,
                });
            }
            let source = std::str::from_utf8(body).map_err(|_| {
                format!(
                    "PUBLISH {name} source is not valid UTF-8 \
                     (binary artifacts go through PUBLISH {name} SNAPSHOT)"
                )
            })?;
            return Ok(Request::Publish {
                name: name.to_owned(),
                source: source.to_owned(),
                step_budget,
            });
        }
        let payload =
            std::str::from_utf8(payload).map_err(|_| "request is not valid UTF-8".to_owned())?;
        if let Some(name) = payload.strip_prefix("SNAPSHOT @") {
            validate_name(name)?;
            return Ok(Request::Snapshot {
                name: name.to_owned(),
            });
        }
        for (verb, retract) in [("ASSERT @", false), ("RETRACT @", true)] {
            let Some(rest) = payload.strip_prefix(verb) else {
                continue;
            };
            let (name, clause) = rest.split_once(' ').ok_or_else(|| {
                format!(
                    "{} needs a clause after the name",
                    verb.trim_end_matches(" @")
                )
            })?;
            validate_name(name)?;
            if clause.is_empty() {
                return Err("empty clause".to_owned());
            }
            return Ok(if retract {
                Request::Retract {
                    name: name.to_owned(),
                    clause: clause.to_owned(),
                }
            } else {
                Request::Assert {
                    name: name.to_owned(),
                    clause: clause.to_owned(),
                }
            });
        }
        if let Some(source) = payload.strip_prefix("CONSULT\n") {
            return Ok(Request::Consult {
                source: source.to_owned(),
            });
        }
        for (verb, enumerate_all) in [("QUERY ", false), ("QUERYALL ", true)] {
            let Some(rest) = payload.strip_prefix(verb) else {
                continue;
            };
            let (tenant, rest) = match rest.strip_prefix('@') {
                Some(after) => {
                    let (name, rest) = after
                        .split_once(' ')
                        .ok_or_else(|| "tenant query needs a query after the name".to_owned())?;
                    validate_name(name)?;
                    (Some(name.to_owned()), rest)
                }
                None => (None, rest),
            };
            let (step_budget, rest) = match rest.strip_prefix("BUDGET ") {
                Some(after) => {
                    let (steps, rest) = after
                        .split_once(' ')
                        .ok_or_else(|| "BUDGET needs a count and a query".to_owned())?;
                    (Some(parse_budget(steps)?), rest)
                }
                None => (None, rest),
            };
            let (cursor, query) = match rest.strip_prefix("CURSOR ") {
                Some(query) => {
                    if enumerate_all {
                        return Err(
                            "CURSOR is a QUERY option (a cursor already enumerates)".to_owned()
                        );
                    }
                    (true, query)
                }
                None => (false, rest),
            };
            if query.is_empty() {
                return Err("empty query".to_owned());
            }
            return Ok(Request::Query {
                tenant,
                query: query.to_owned(),
                enumerate_all,
                step_budget,
                cursor,
            });
        }
        if let Some(rest) = payload.strip_prefix("NEXT ") {
            let (id, count) = match rest.split_once(' ') {
                Some((id, count)) => (id, Some(parse_batch_count(count)?)),
                None => (rest, None),
            };
            return Ok(Request::Next {
                id: parse_cursor_id(id)?,
                count,
            });
        }
        if let Some(id) = payload.strip_prefix("CLOSE ") {
            return Ok(Request::Close {
                id: parse_cursor_id(id)?,
            });
        }
        match payload {
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown command {:?}",
                other.lines().next().unwrap_or_default()
            )),
        }
    }
}

/// One parsed server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The request succeeded; `body` is command-specific.
    Ok {
        /// Rendered outcome, metrics lines, publish receipt, or empty.
        body: String,
    },
    /// The request succeeded with a binary snapshot artifact (the
    /// `SNAPSHOT @name` reply). The bytes restore through
    /// `kcm_arch::snapshot::load` or republish through
    /// [`Request::PublishSnapshot`].
    Snapshot {
        /// The serialized program artifact.
        bytes: Vec<u8>,
    },
    /// The request queue was full; the client should back off and retry.
    Busy,
    /// The request failed.
    Err {
        /// Stable error class (`kcm_system::error_class`, plus
        /// `"protocol"` for malformed frames).
        class: String,
        /// Human-readable message.
        message: String,
    },
}

impl Reply {
    /// Encodes the reply as a frame payload. Bytes, not a string: a
    /// [`Reply::Snapshot`] body is a binary artifact; every other reply
    /// is UTF-8 text.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Reply::Ok { body } => format!("OK\n{body}").into_bytes(),
            Reply::Snapshot { bytes } => {
                let mut payload = b"SNAPSHOT\n".to_vec();
                payload.extend_from_slice(bytes);
                payload
            }
            Reply::Busy => b"BUSY\n".to_vec(),
            Reply::Err { class, message } => format!("ERR {class}: {message}\n").into_bytes(),
        }
    }

    /// Parses a frame payload (raw bytes; `&str` coerces through
    /// `AsRef`).
    ///
    /// # Errors
    ///
    /// Returns a description when the payload fits no reply form.
    pub fn parse(payload: impl AsRef<[u8]>) -> Result<Reply, String> {
        Reply::parse_bytes(payload.as_ref())
    }

    fn parse_bytes(payload: &[u8]) -> Result<Reply, String> {
        if let Some(bytes) = payload.strip_prefix(b"SNAPSHOT\n") {
            return Ok(Reply::Snapshot {
                bytes: bytes.to_vec(),
            });
        }
        let payload = std::str::from_utf8(payload)
            .map_err(|_| "non-snapshot reply is not valid UTF-8".to_owned())?;
        if let Some(body) = payload.strip_prefix("OK\n") {
            return Ok(Reply::Ok {
                body: body.to_owned(),
            });
        }
        if payload == "BUSY\n" {
            return Ok(Reply::Busy);
        }
        if let Some(rest) = payload.strip_prefix("ERR ") {
            let (class, message) = rest
                .split_once(": ")
                .ok_or_else(|| "ERR reply without a class".to_owned())?;
            return Ok(Reply::Err {
                class: class.to_owned(),
                message: message.trim_end_matches('\n').to_owned(),
            });
        }
        Err(format!(
            "unknown reply {:?}",
            payload.lines().next().unwrap_or_default()
        ))
    }

    /// Whether this is an `OK` reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok { .. })
    }
}

/// Renders a query outcome as the `OK` reply body. The loopback tests
/// compare this rendering of a served outcome byte-for-byte against the
/// same rendering of a direct [`kcm_system::Kcm::query`] outcome, so
/// everything observable goes in: success, solutions (in enumeration
/// order), `write/1` output, and the simulation counters.
pub fn render_outcome(o: &Outcome) -> String {
    let mut s = format!(
        "success={} solutions={} inferences={} cycles={}\n",
        o.success,
        o.solutions.len(),
        o.stats.inferences,
        o.stats.cycles
    );
    for sol in &o.solutions {
        s.push_str(&solution_line(sol));
        s.push('\n');
    }
    s.push_str(&format!("output={:?}\n", o.output));
    s
}

/// One solution rendered `Var=term,...` — the per-answer line shared by
/// [`render_outcome`] and [`render_batch`], so a streamed enumeration is
/// byte-comparable line-by-line against a materialized one.
pub fn solution_line(sol: &Solution) -> String {
    sol.iter()
        .map(|(n, t)| format!("{n}={t}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders one `NEXT` batch as the `OK` reply body: the cursor id, how
/// many answers follow, whether the enumeration is exhausted (in which
/// case the cursor is already released), and this batch's slice counters
/// — then the answer lines (same rendering as [`render_outcome`]) and
/// the slice's `write/1` output.
pub fn render_batch(
    id: u64,
    answers: &[Solution],
    done: bool,
    stats: &RunStats,
    output: &str,
) -> String {
    let mut s = format!(
        "cursor={id} answers={} done={done} inferences={} cycles={}\n",
        answers.len(),
        stats.inferences,
        stats.cycles
    );
    for sol in answers {
        s.push_str(&solution_line(sol));
        s.push('\n');
    }
    s.push_str(&format!("output={output:?}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "QUERY p(X)").expect("write");
        write_frame(&mut wire, "").expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(b"QUERY p(X)".as_slice())
        );
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(b"".as_slice())
        );
        assert_eq!(read_frame(&mut r).expect("read"), None);
    }

    #[test]
    fn frames_carry_newlines_in_payloads() {
        let mut wire = Vec::new();
        let program = "CONSULT\np(1).\np(2).\n";
        write_frame(&mut wire, program).expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(program.as_bytes())
        );
    }

    #[test]
    fn frames_are_8_bit_clean() {
        // Binary artifact bytes — including bytes that are not UTF-8 and
        // embedded newlines — pass through both frame decoders intact.
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let mut r = BufReader::new(wire.as_slice());
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&payload[..])
        );
        let mut fb = FrameBuf::new();
        fb.feed(&wire);
        assert_eq!(
            fb.next_frame().expect("frame").as_deref(),
            Some(&payload[..])
        );
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut r = BufReader::new(b"10\nshort".as_slice());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn frame_buf_decodes_whole_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "QUERY p(X)").expect("write");
        write_frame(&mut wire, "").expect("write");
        let mut fb = FrameBuf::new();
        fb.feed(&wire);
        assert_eq!(
            fb.next_frame().expect("a").as_deref(),
            Some(b"QUERY p(X)".as_slice())
        );
        assert_eq!(fb.next_frame().expect("b").as_deref(), Some(b"".as_slice()));
        assert_eq!(fb.next_frame().expect("c"), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn frame_buf_survives_byte_by_byte_feeding() {
        // The slow-client regression at the decoder level: every frame
        // boundary lands mid-feed and nothing is lost. Interleave two
        // frames so the tail of one arrives glued to the head of the
        // next.
        let mut wire = Vec::new();
        write_frame(&mut wire, "CONSULT\np(1).\np(2).\n").expect("write");
        write_frame(&mut wire, "QUERYALL p(X)").expect("write");
        for chunk in [1usize, 2, 3] {
            let mut fb = FrameBuf::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.feed(piece);
                while let Some(frame) = fb.next_frame().expect("frame") {
                    got.push(frame);
                }
            }
            assert_eq!(
                got,
                vec![
                    b"CONSULT\np(1).\np(2).\n".to_vec(),
                    b"QUERYALL p(X)".to_vec()
                ],
                "chunk size {chunk}"
            );
            assert!(!fb.has_partial(), "chunk size {chunk}");
        }
    }

    #[test]
    fn frame_buf_reports_partial_state() {
        let mut fb = FrameBuf::new();
        assert!(!fb.has_partial());
        fb.feed(b"1");
        assert!(fb.has_partial());
        assert_eq!(fb.next_frame().expect("need more"), None);
        fb.feed(b"0\n");
        assert_eq!(fb.next_frame().expect("need payload"), None);
        assert!(fb.has_partial(), "a parsed length line is partial state");
        fb.feed(b"0123456789");
        assert_eq!(
            fb.next_frame().expect("frame").as_deref(),
            Some(b"0123456789".as_slice())
        );
        assert!(!fb.has_partial());
    }

    #[test]
    fn frame_buf_rejects_garbage_lengths() {
        for bad in [
            &b"x\n"[..],
            &b"-3\nabc"[..],
            &b"999999999999999999999\n"[..],
        ] {
            let mut fb = FrameBuf::new();
            fb.feed(bad);
            assert!(fb.next_frame().is_err(), "{bad:?}");
        }
        // An unbounded "length line" that never sends a newline must not
        // buffer forever.
        let mut fb = FrameBuf::new();
        fb.feed(&[b'1'; MAX_LENGTH_LINE + 1]);
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Consult {
                source: "p(1).\np(2).".to_owned(),
            },
            Request::Publish {
                name: "alpha".to_owned(),
                source: "p(1).\np(2).".to_owned(),
                step_budget: None,
            },
            Request::Publish {
                name: "tight-kb_2".to_owned(),
                source: "loop :- loop.".to_owned(),
                step_budget: Some(10_000),
            },
            Request::Query {
                tenant: None,
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: None,
                cursor: false,
            },
            Request::Query {
                tenant: Some("alpha".to_owned()),
                query: "p(X)".to_owned(),
                enumerate_all: true,
                step_budget: None,
                cursor: false,
            },
            Request::Query {
                tenant: Some("alpha".to_owned()),
                query: "serialise(\"ABA\", R)".to_owned(),
                enumerate_all: true,
                step_budget: Some(10_000),
                cursor: false,
            },
            Request::Query {
                tenant: None,
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: None,
                cursor: true,
            },
            Request::Query {
                tenant: Some("alpha".to_owned()),
                query: "p(X, Y)".to_owned(),
                enumerate_all: false,
                step_budget: Some(5_000),
                cursor: true,
            },
            Request::Next { id: 7, count: None },
            Request::Next {
                id: 7,
                count: Some(64),
            },
            Request::Close { id: u64::MAX },
            Request::Stats,
            Request::Shutdown,
            Request::PublishSnapshot {
                name: "alpha".to_owned(),
                snapshot: vec![0x2a, 0xff, 0x00, b'\n', 0x80, 0x01],
                step_budget: None,
            },
            Request::PublishSnapshot {
                name: "beta-2".to_owned(),
                snapshot: (0..=255).collect(),
                step_budget: Some(9_000),
            },
            Request::Snapshot {
                name: "alpha".to_owned(),
            },
            Request::Assert {
                name: "kb".to_owned(),
                clause: "f(k9, v1)".to_owned(),
            },
            Request::Retract {
                name: "kb".to_owned(),
                clause: "f(k9, v1)".to_owned(),
            },
        ] {
            assert_eq!(Request::parse(req.encode()).expect("parse"), req);
        }
    }

    #[test]
    fn artifact_grammar_is_enforced() {
        // The SNAPSHOT suffix only means "binary body" in option
        // position; a program named SNAPSHOT still publishes as text.
        assert_eq!(
            Request::parse("PUBLISH SNAPSHOT\np(1)."),
            Ok(Request::Publish {
                name: "SNAPSHOT".to_owned(),
                source: "p(1).".to_owned(),
                step_budget: None,
            })
        );
        // An empty snapshot body is syntactically fine; it fails later
        // with a classed snapshot error (truncated).
        assert_eq!(
            Request::parse(b"PUBLISH kb SNAPSHOT\n".as_slice()),
            Ok(Request::PublishSnapshot {
                name: "kb".to_owned(),
                snapshot: Vec::new(),
                step_budget: None,
            })
        );
        for bad in [
            "SNAPSHOT kb",        // export addresses a tenant: needs @
            "SNAPSHOT @",         // empty name
            "SNAPSHOT @bad!name", // name grammar
            "ASSERT @kb",         // no clause
            "ASSERT @kb ",        // empty clause
            "ASSERT kb f(1)",     // missing @
            "RETRACT @kb",
            "RETRACT @9lives f(1)",
            "PUBLISH kb BUDGET 0 SNAPSHOT\n", // budget grammar still applies
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn binary_garbage_is_a_parse_error_not_a_panic() {
        // A non-UTF-8 payload outside the PUBLISH … SNAPSHOT form is a
        // classed protocol error (the server replies ERR, it does not
        // drop the connection).
        assert!(Request::parse(b"QUERY p(\xff\xfe)".as_slice()).is_err());
        assert!(Request::parse(b"\x00\x01\x02".as_slice()).is_err());
        // Binary garbage in a text PUBLISH body names the escape hatch.
        let err = Request::parse(b"PUBLISH kb\n\xde\xad\xbe\xef".as_slice()).unwrap_err();
        assert!(err.contains("SNAPSHOT"), "{err}");
        // A non-UTF-8 header line is rejected before name validation.
        assert!(Request::parse(b"PUBLISH \xffkb\np(1).".as_slice()).is_err());
    }

    #[test]
    fn cursor_grammar_is_enforced() {
        // CURSOR composes after tenant and BUDGET, before the query.
        assert_eq!(
            Request::parse("QUERY @kb BUDGET 5 CURSOR p(X)").expect("parse"),
            Request::Query {
                tenant: Some("kb".to_owned()),
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: Some(5),
                cursor: true,
            }
        );
        // In query position, CURSOR is just an atom — only the option
        // slot means "open a cursor".
        assert_eq!(
            Request::parse("QUERY CURSOR CURSOR").expect("parse"),
            Request::Query {
                tenant: None,
                query: "CURSOR".to_owned(),
                enumerate_all: false,
                step_budget: None,
                cursor: true,
            }
        );
        for bad in [
            "QUERYALL CURSOR p(X)", // a cursor already enumerates
            "QUERY CURSOR ",        // no query after the option
            "NEXT",                 // verb without an id
            "NEXT x",
            "NEXT -1",
            "NEXT 1 0", // empty batch is a client bug
            "NEXT 1 +2",
            "NEXT 1 2 3",
            "NEXT 99999999999999999999999999",
            "CLOSE",
            "CLOSE x",
            "CLOSE 1 2",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        // Id 0 is syntactically valid; it is just never allocated.
        assert_eq!(
            Request::parse("NEXT 0").expect("parse"),
            Request::Next { id: 0, count: None }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "QUERY ",
            "QUERY BUDGET x p",
            "QUERY BUDGET 5",
            "QUERY @name",
            "QUERY @ p(X)",
            "QUERY @bad!name p(X)",
            "QUERY @9lives p(X)",
            "PUBLISH alpha",
            "PUBLISH alpha FOO 3\np(1).",
            "PUBLISH alpha BUDGET 0\np(1).",
            "PUBLISH \np(1).",
            "PUBLISH a.b\np(1).",
            "NOPE",
            "",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        let long = format!("PUBLISH {}\np(1).", "n".repeat(MAX_NAME + 1));
        assert!(Request::parse(&long).is_err());
    }

    #[test]
    fn tenant_queries_keep_the_query_text_intact() {
        // `@` only means "tenant" in verb position; the query text after
        // the name is untouched, including any @ inside it.
        assert_eq!(
            Request::parse("QUERY @kb p(@, X)").expect("parse"),
            Request::Query {
                tenant: Some("kb".to_owned()),
                query: "p(@, X)".to_owned(),
                enumerate_all: false,
                step_budget: None,
                cursor: false,
            }
        );
        // BUDGET composes after the tenant, exactly as in session mode.
        assert_eq!(
            Request::parse("QUERYALL @kb BUDGET 5 p(X)").expect("parse"),
            Request::Query {
                tenant: Some("kb".to_owned()),
                query: "p(X)".to_owned(),
                enumerate_all: true,
                step_budget: Some(5),
                cursor: false,
            }
        );
    }

    #[test]
    fn budget_counts_follow_the_strict_grammar() {
        // Rejected: zero, signs (u64::from_str would take "+5"), empty,
        // embedded garbage, double spaces, and counts beyond u64.
        for bad in [
            "QUERYALL BUDGET 0 p(X)",
            "QUERY BUDGET +5 p(X)",
            "QUERY BUDGET -5 p(X)",
            "QUERY BUDGET  5 p(X)",
            "QUERY BUDGET 5x p(X)",
            "QUERY BUDGET 5_000 p(X)",
            "QUERY BUDGET 99999999999999999999999999 p(X)",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
        // Accepted: any positive count up to u64::MAX; the query keeps
        // everything after the single separating space.
        assert_eq!(
            Request::parse("QUERY BUDGET 1 p(X)").expect("min budget"),
            Request::Query {
                tenant: None,
                query: "p(X)".to_owned(),
                enumerate_all: false,
                step_budget: Some(1),
                cursor: false,
            }
        );
        assert_eq!(
            Request::parse(format!("QUERYALL BUDGET {} p(a, b)", u64::MAX)).expect("max budget"),
            Request::Query {
                tenant: None,
                query: "p(a, b)".to_owned(),
                enumerate_all: true,
                step_budget: Some(u64::MAX),
                cursor: false,
            }
        );
    }

    #[test]
    fn name_grammar_is_enforced() {
        for good in ["a", "_x", "kb-2", "A_long-Name9", &"n".repeat(MAX_NAME)] {
            assert!(validate_name(good).is_ok(), "{good:?}");
        }
        for bad in [
            "",
            "9a",
            "-a",
            "a b",
            "a.b",
            "a@b",
            &"n".repeat(MAX_NAME + 1),
        ] {
            assert!(validate_name(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Ok {
                body: "success=true solutions=1 inferences=3 cycles=40\nX=1\noutput=\"\"\n"
                    .to_owned(),
            },
            Reply::Busy,
            Reply::Err {
                class: "budget".to_owned(),
                message: "step budget exhausted after 10001 steps".to_owned(),
            },
            Reply::Snapshot {
                bytes: vec![b'K', 0x00, 0xff, b'\n', 0x7f],
            },
            Reply::Snapshot { bytes: Vec::new() },
        ] {
            assert_eq!(Reply::parse(reply.encode()).expect("parse"), reply);
        }
    }
}
