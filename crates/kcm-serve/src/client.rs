//! A blocking client for the serve protocol — used by `loadgen`, the
//! loopback tests, and anything else that wants to talk to `kcm-serve`
//! without hand-rolling frames.

use crate::protocol::{read_frame, write_frame, Reply, Request};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a `kcm-serve` server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the reply.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the server's reply doesn't
    /// parse.
    pub fn request(&mut self, request: &Request) -> io::Result<Reply> {
        self.request_raw(request.encode())
    }

    /// Sends a raw request payload — including payloads [`Request`]
    /// itself could never encode — and reads the reply. This is how the
    /// protocol tests probe the server's handling of malformed frames.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn request_raw(&mut self, payload: impl AsRef<[u8]>) -> io::Result<Reply> {
        write_frame(&mut self.writer, payload)?;
        let reply = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Reply::parse(&reply).map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))
    }

    /// Consults a program on this connection.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn consult(&mut self, source: &str) -> io::Result<Reply> {
        self.request(&Request::Consult {
            source: source.to_owned(),
        })
    }

    /// Publishes a program into the server's shared registry under
    /// `name`, with an optional per-tenant step budget.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn publish(
        &mut self,
        name: &str,
        source: &str,
        step_budget: Option<u64>,
    ) -> io::Result<Reply> {
        self.request(&Request::Publish {
            name: name.to_owned(),
            source: source.to_owned(),
            step_budget,
        })
    }

    /// Publishes a binary snapshot artifact into the server's shared
    /// registry under `name` — the bytes a [`Client::snapshot`] export
    /// or a local `kcm_arch::snapshot::save` produced.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn publish_snapshot(
        &mut self,
        name: &str,
        snapshot: &[u8],
        step_budget: Option<u64>,
    ) -> io::Result<Reply> {
        self.request(&Request::PublishSnapshot {
            name: name.to_owned(),
            snapshot: snapshot.to_vec(),
            step_budget,
        })
    }

    /// Exports the published program `name` as binary snapshot bytes.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `InvalidData` on a non-snapshot
    /// reply.
    pub fn snapshot(&mut self, name: &str) -> io::Result<Vec<u8>> {
        match self.request(&Request::Snapshot {
            name: name.to_owned(),
        })? {
            Reply::Snapshot { bytes } => Ok(bytes),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("SNAPSHOT answered {other:?}"),
            )),
        }
    }

    /// Adds one clause to the published program `name` (no trailing
    /// period), copy-on-write.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn assertz(&mut self, name: &str, clause: &str) -> io::Result<Reply> {
        self.request(&Request::Assert {
            name: name.to_owned(),
            clause: clause.to_owned(),
        })
    }

    /// Retracts the first clause equal to `clause` from the published
    /// program `name`, copy-on-write. The reply body carries a
    /// `removed=` line.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn retract(&mut self, name: &str, clause: &str) -> io::Result<Reply> {
        self.request(&Request::Retract {
            name: name.to_owned(),
            clause: clause.to_owned(),
        })
    }

    /// Runs a query for its first solution against this connection's
    /// consulted program.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn query(&mut self, query: &str) -> io::Result<Reply> {
        self.request(&Request::Query {
            tenant: None,
            query: query.to_owned(),
            enumerate_all: false,
            step_budget: None,
            cursor: false,
        })
    }

    /// Runs a query for every solution against this connection's
    /// consulted program.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn query_all(&mut self, query: &str) -> io::Result<Reply> {
        self.request(&Request::Query {
            tenant: None,
            query: query.to_owned(),
            enumerate_all: true,
            step_budget: None,
            cursor: false,
        })
    }

    /// Runs a query for its first solution against the published program
    /// `name`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn query_tenant(&mut self, name: &str, query: &str) -> io::Result<Reply> {
        self.request(&Request::Query {
            tenant: Some(name.to_owned()),
            query: query.to_owned(),
            enumerate_all: false,
            step_budget: None,
            cursor: false,
        })
    }

    /// Runs a query for every solution against the published program
    /// `name`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn query_tenant_all(&mut self, name: &str, query: &str) -> io::Result<Reply> {
        self.request(&Request::Query {
            tenant: Some(name.to_owned()),
            query: query.to_owned(),
            enumerate_all: true,
            step_budget: None,
            cursor: false,
        })
    }

    /// Opens a cursor over `query`'s enumeration and returns its id.
    /// `tenant` routes to a published program; `step_budget` bounds each
    /// pull's slice.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `InvalidData` on a non-`OK` reply or
    /// an open reply without a `cursor=<id>` line.
    pub fn open_cursor(
        &mut self,
        tenant: Option<&str>,
        query: &str,
        step_budget: Option<u64>,
    ) -> io::Result<u64> {
        let reply = self.request(&Request::Query {
            tenant: tenant.map(str::to_owned),
            query: query.to_owned(),
            enumerate_all: false,
            step_budget,
            cursor: true,
        })?;
        match reply {
            Reply::Ok { body } => body
                .strip_prefix("cursor=")
                .and_then(|rest| rest.trim_end().parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad cursor-open body {body:?}"),
                    )
                }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cursor open answered {other:?}"),
            )),
        }
    }

    /// Pulls the next batch from cursor `id` (`count = None` pulls one
    /// answer). Returns the raw reply — the `OK` body is the
    /// [`crate::protocol::render_batch`] format.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn next(&mut self, id: u64, count: Option<u64>) -> io::Result<Reply> {
        self.request(&Request::Next { id, count })
    }

    /// Releases cursor `id`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn close_cursor(&mut self, id: u64) -> io::Result<Reply> {
        self.request(&Request::Close { id })
    }

    /// Fetches server-wide metrics (the `STATS` body).
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `InvalidData` on a non-`OK` reply.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.request(&Request::Stats)? {
            Reply::Ok { body } => Ok(body),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("STATS answered {other:?}"),
            )),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.request(&Request::Shutdown)
    }
}
