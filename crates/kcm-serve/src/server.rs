//! The query server: one nonblocking readiness loop owning every
//! connection, feeding a bounded job queue fanned across session-pool
//! worker threads.
//!
//! Concurrency layout:
//!
//! * one **event-loop thread** (the caller of [`Server::run`]) owns the
//!   listener and *all* connection sockets, nonblocking, multiplexed
//!   through [`crate::poll::Poller`] (epoll on Linux). Each connection
//!   carries its own [`FrameBuf`] decode state and write buffer, so a
//!   client dribbling a frame one byte per 100 ms costs a buffer slot,
//!   not a thread — 10k idle connections cost ~0 threads;
//! * a fixed set of **worker threads** executes queries as isolated pool
//!   sessions ([`kcm_system::pool::run_session`]) pulled from one bounded
//!   queue; the compiled image travels to the worker as an `Arc`, exactly
//!   as [`kcm_system::SessionPool`] ships it. Completions come back over
//!   a channel plus a wake pipe byte; the loop also drains completions on
//!   every tick, so a lost wake delays a reply by at most one tick;
//! * the queue is a `sync_channel(queue_depth)`: when it is full the
//!   loop answers `BUSY` immediately instead of queueing without bound —
//!   backpressure is explicit and visible to clients. While a
//!   connection's request is in flight its read interest is paused, so a
//!   pipelining client is flow-controlled by TCP, not by server memory;
//! * published programs live in a shared [`ProgramRegistry`]; `PUBLISH`
//!   and `CONSULT` compile on the loop thread (compilation is brief and
//!   amortized over every query that follows), queries run on workers;
//! * **cursors** are suspended [`kcm_system::Solutions`] sessions owned
//!   by the event loop, keyed by a server-global id that is never
//!   reused. A `NEXT` ships the boxed session to a worker for one
//!   bounded batch and the completion carries it back; while the pull is
//!   in flight the cursor table holds `None`, and the owning connection
//!   is `busy`, so no second operation can touch the session
//!   concurrently. A cursor pins its tenant's `Arc<CodeImage>`: a
//!   republish under an open cursor compiles a new image while the
//!   cursor keeps streaming the one it opened against. Cursors die four
//!   ways — `CLOSE`, exhaustion (`done=true` auto-releases), a slice
//!   error (budget exhaustion kills the session cleanly), and the idle
//!   reaper that runs on the loop's timed tick; closing a connection
//!   reaps its cursors by construction, so an abandoned cursor can
//!   outlive its client by at most `cursor_idle`.
//!
//! Shutdown is graceful and self-contained: `SHUTDOWN` is handled on the
//! loop itself, which stops accepting, closes idle connections, lets
//! in-flight requests finish and flush, then closes the queue so workers
//! drain and exit. The previous thread-per-connection design had to wake
//! its blocking accept loop by self-connecting to
//! `listener.local_addr()` — the *unspecified* address
//! (`0.0.0.0:<port>`) for typical binds, so the wake could fail and hang
//! the drain. The readiness loop's timed wait is the flag-check tick
//! that replaces it; no self-connect exists to go wrong.

use crate::poll::{Event, Interest, Poller};
use crate::protocol::{encode_frame, render_batch, render_outcome, FrameBuf, Reply, Request};
use kcm_arch::SymbolTable;
use kcm_compiler::CodeImage;
use kcm_system::pool::run_session;
use kcm_system::registry::{ProgramRegistry, Published, TenantStats};
use kcm_system::{
    error_class, open_session, Kcm, KcmError, MachineConfig, Outcome, ProgramSource, QueryJob,
    QueryOpts, RunStats, Solutions, Tier,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The event loop's wait tick: bounds how long a missed wake byte can
/// delay a completion and how stale the drain check can be.
const READ_TICK: Duration = Duration::from_millis(100);

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the worker wake pipe.
const TOKEN_WAKE: u64 = 1;
/// Connection tokens start here (low 32 bits; generation above).
const FIRST_CONN: u64 = 2;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Step budget applied to requests that don't carry their own
    /// `BUDGET` (for tenant queries, after the tenant's own publish-time
    /// budget); `None` leaves runaway queries to the machine's fuel cap.
    pub default_step_budget: Option<u64>,
    /// Capacity of the shared program registry; publishing a new name
    /// into a full registry evicts the least-recently-used tenant.
    pub max_programs: usize,
    /// Execution tier for every served query. Defaults to
    /// [`Tier::Native`]: a service asks "what is the answer", not "how
    /// fast was the 1989 hardware", and the native tier returns identical
    /// solutions, output and error classes several times faster. Set
    /// [`Tier::Cycle`] for fidelity runs where the `STATS` cycle counter
    /// must reflect the simulated machine (it reads 0 under the native
    /// tier; the `steps` counter is the tier-independent work measure).
    pub tier: Tier,
    /// Machine configuration for every session.
    pub machine: MachineConfig,
    /// Open cursors allowed per connection; the next `QUERY … CURSOR`
    /// past the cap answers `BUSY` until one is released.
    pub cursors_per_conn: usize,
    /// How long a cursor may sit idle (no `NEXT`/`CLOSE`) before the
    /// loop's tick reaps it. Bounds the suspended-machine memory an
    /// abandoned-but-connected client can pin.
    pub cursor_idle: Duration,
    /// Largest batch one `NEXT` may pull; bigger requests are clamped
    /// (visible to the client through the reply's `answers=` count).
    pub cursor_batch_cap: u64,
    /// In-flight work items (queries, cursor opens, cursor pulls)
    /// allowed per tenant; past the cap the tenant's requests answer
    /// `BUSY` while other tenants keep being served. `None` leaves
    /// tenants to contend for the shared queue.
    pub tenant_inflight_cap: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            queue_depth: 64,
            default_step_budget: Some(50_000_000),
            max_programs: 64,
            tier: Tier::Native,
            machine: MachineConfig::default(),
            cursors_per_conn: 16,
            cursor_idle: Duration::from_secs(30),
            cursor_batch_cap: 256,
            tenant_inflight_cap: None,
        }
    }
}

/// Server-wide aggregate metrics, reported by `STATS` and returned by
/// [`Server::run`]. `STATS` additionally renders per-tenant counters
/// from the registry (`tenant.<name>.<counter>=` lines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Programs consulted (per-connection session mode).
    pub consults: u64,
    /// Programs published into the shared registry.
    pub publishes: u64,
    /// Queries accepted onto the queue.
    pub queries: u64,
    /// Queries answered with a completed outcome.
    pub served: u64,
    /// Queries rejected with `BUSY` (queue full).
    pub busy: u64,
    /// Queries stopped by the step budget.
    pub budget_stops: u64,
    /// Queries failed with any other error.
    pub errors: u64,
    /// Solutions across served queries.
    pub solutions: u64,
    /// Logical inferences across served queries.
    pub inferences: u64,
    /// Simulated KCM cycles across served queries; stays 0 when serving
    /// on the (default) native tier, which has no clock.
    pub cycles: u64,
    /// Retired machine instructions across served queries — the
    /// tier-independent work counter (nonzero on both tiers).
    pub steps: u64,
    /// Clause-indexing switch dispatches that found their key, across
    /// served queries (tier-independent, like `steps`).
    pub switch_hits: u64,
    /// Switch dispatches that missed their table.
    pub switch_misses: u64,
    /// Switch table probes charged (the simulated linear-scan cost the
    /// hash side table avoids paying on the host).
    pub switch_probes: u64,
    /// Second-level (depth-2) switch dispatches taken.
    pub switch_depth2: u64,
    /// Cursors opened (`QUERY … CURSOR` that compiled and suspended).
    pub cursors_opened: u64,
    /// `NEXT` batches served from cursors.
    pub cursor_batches: u64,
    /// Answers streamed across all cursor batches.
    pub cursor_answers: u64,
    /// Cursors released by the server rather than the client: idle
    /// reaping plus connection-close cleanup.
    pub cursors_reaped: u64,
}

impl ServeMetrics {
    /// The `STATS` reply's aggregate section: one `key=value` line per
    /// counter.
    pub fn render(&self) -> String {
        format!(
            "connections={}\nconsults={}\npublishes={}\nqueries={}\nserved={}\nbusy={}\nbudget_stops={}\nerrors={}\nsolutions={}\ninferences={}\ncycles={}\nsteps={}\nswitch_hits={}\nswitch_misses={}\nswitch_probes={}\nswitch_depth2={}\ncursors_opened={}\ncursor_batches={}\ncursor_answers={}\ncursors_reaped={}\n",
            self.connections,
            self.consults,
            self.publishes,
            self.queries,
            self.served,
            self.busy,
            self.budget_stops,
            self.errors,
            self.solutions,
            self.inferences,
            self.cycles,
            self.steps,
            self.switch_hits,
            self.switch_misses,
            self.switch_probes,
            self.switch_depth2,
            self.cursors_opened,
            self.cursor_batches,
            self.cursor_answers,
            self.cursors_reaped
        )
    }
}

/// One queued unit of work: everything a worker needs, plus the routing
/// information for the reply. The `tenant` on each variant is the
/// resolved registry entry, when the request named one: holding the
/// `Arc` keeps the program alive across re-publish/eviction, the worker
/// mirrors its accounting into the tenant's stats, and the in-flight
/// slot claimed at dispatch is released against it.
enum WorkItem {
    /// A one-shot query (first solution or enumerate-all).
    Query {
        /// Connection token (index + generation) the reply belongs to.
        token: u64,
        image: Arc<CodeImage>,
        symbols: SymbolTable,
        config: MachineConfig,
        job: QueryJob,
        tenant: Option<Arc<Published>>,
    },
    /// Compile a query and suspend it as cursor `cursor_id`.
    CursorOpen {
        token: u64,
        cursor_id: u64,
        image: Arc<CodeImage>,
        symbols: SymbolTable,
        config: MachineConfig,
        query: String,
        opts: QueryOpts,
        tenant: Option<Arc<Published>>,
    },
    /// Pull up to `count` answers from a suspended session. The session
    /// travels by value: while it is here the loop's cursor entry holds
    /// `None`, so nothing else can touch it.
    CursorNext {
        token: u64,
        cursor_id: u64,
        session: Box<Solutions>,
        count: u64,
        tenant: Option<Arc<Published>>,
    },
}

/// A finished work item on its way back to the event loop.
struct Completion {
    token: u64,
    /// The encoded reply payload (rendered on the worker; the loop only
    /// frames and writes it).
    payload: Vec<u8>,
    /// Present when the item was a cursor operation.
    cursor: Option<CursorReturn>,
}

/// The cursor-table update a completion carries: `Some` session means
/// "park it back under `id`"; `None` means the cursor is finished
/// (open failed, enumeration exhausted, or a slice error killed it) and
/// the entry should be removed.
struct CursorReturn {
    id: u64,
    session: Option<Box<Solutions>>,
}

struct Shared {
    cfg: ServeConfig,
    metrics: Mutex<ServeMetrics>,
    registry: ProgramRegistry,
}

/// A bound, not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: SyncSender<WorkItem>,
    done_rx: Receiver<Completion>,
    wake_rx: UnixStream,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and spawns the worker threads. `addr` may name port 0
    /// for an ephemeral port; read it back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let (job_tx, job_rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_depth.max(1));
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        // Both ends nonblocking: the loop drains without blocking, and a
        // worker whose wake byte won't fit (pipe already full of wakes)
        // just drops it — the pending byte or the tick wakes the loop.
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            registry: ProgramRegistry::new(cfg.max_programs),
            metrics: Mutex::new(ServeMetrics::default()),
            cfg,
        });
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let shared = Arc::clone(&shared);
                let done_tx = done_tx.clone();
                let wake_tx = wake_tx.try_clone()?;
                Ok(std::thread::spawn(move || {
                    worker_loop(&job_rx, &shared, &done_tx, &wake_tx);
                }))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            listener,
            shared,
            jobs: job_tx,
            done_rx,
            wake_rx,
            workers,
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends SHUTDOWN, then drains and returns the
    /// final metrics. The calling thread *is* the event loop; no threads
    /// are spawned per connection.
    ///
    /// # Errors
    ///
    /// Propagates listener/poller socket errors; per-connection errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<ServeMetrics> {
        let Server {
            listener,
            shared,
            jobs,
            done_rx,
            wake_rx,
            workers,
        } = self;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let mut el = EventLoop {
            listener,
            poller,
            shared: Arc::clone(&shared),
            jobs: Some(jobs),
            done_rx,
            wake_rx,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            cursors: HashMap::new(),
            next_cursor_id: 1,
            shutting_down: false,
            accepting: true,
        };
        el.run_loop()?;
        // Close the queue: workers finish what was accepted and exit.
        el.jobs = None;
        for w in workers {
            let _ = w.join();
        }
        let metrics = shared.metrics.lock().expect("metrics").clone();
        Ok(metrics)
    }
}

/// One connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Incremental frame decoder: partial length lines and payloads
    /// survive across readiness events by construction.
    frames: FrameBuf,
    /// Pending reply bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// This connection's session-mode program state.
    kcm: Kcm,
    /// A request is with the workers; reads are paused and no further
    /// frame is processed until its completion, preserving per-connection
    /// FIFO order.
    busy: bool,
    /// The peer sent EOF (or SHUTDOWN ended the session): no more input
    /// will be processed; close once in-flight work has flushed.
    read_closed: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.busy && !self.read_closed,
            writable: self.pending_write(),
        }
    }
}

/// A connection slot with a generation counter, so a completion for a
/// closed connection can never be delivered to the slot's next tenant.
struct Entry {
    conn: Option<Conn>,
    gen: u32,
}

fn token_of(index: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | (index as u64 + FIRST_CONN)
}

/// One suspended enumeration owned by the event loop.
struct Cursor {
    /// Connection token of the opener; `NEXT`/`CLOSE` from anyone else
    /// answer "unknown cursor" (ids are unguessable only by volume, but
    /// the owner check makes cross-connection probing inert).
    owner: u64,
    /// The suspended session; `None` while a worker holds it. Because
    /// the owning connection is `busy` whenever that is the case, and
    /// only the owner can address the cursor, `None` is never observable
    /// by a request that passes the owner check — except through a
    /// closed-then-reused id, which the never-reused id space rules out.
    session: Option<Box<Solutions>>,
    /// Pinned tenant entry (keeps the image alive across republish and
    /// routes per-tenant accounting).
    tenant: Option<Arc<Published>>,
    /// Last open/pull touch, for the idle reaper.
    last_used: Instant,
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared>,
    /// `Some` while accepting queries; dropped after the loop exits so
    /// the workers drain.
    jobs: Option<SyncSender<WorkItem>>,
    done_rx: Receiver<Completion>,
    wake_rx: UnixStream,
    slots: Vec<Entry>,
    free: Vec<usize>,
    live: usize,
    /// Open cursors by id. Entries whose `session` is `None` have their
    /// pull in flight with a worker.
    cursors: HashMap<u64, Cursor>,
    /// Next cursor id; monotonically increasing, never reused, so a
    /// stale `NEXT` can never address a newer cursor.
    next_cursor_id: u64,
    shutting_down: bool,
    accepting: bool,
}

impl EventLoop {
    fn run_loop(&mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.poller.wait(&mut events, READ_TICK)?;
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready()?,
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.conn_ready(token, ev),
                }
            }
            // Completions are drained every pass regardless of wake
            // bytes: the timed wait above is the fallback that makes a
            // lost wake a latency blip, not a hang.
            self.drain_completions();
            self.reap_idle_cursors();
            if self.shutting_down {
                self.sweep_for_drain();
                if self.live == 0 {
                    return Ok(());
                }
            }
        }
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutting_down {
                        continue; // drop it: no new sessions during drain
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared.metrics.lock().expect("metrics").connections += 1;
                    let conn = Conn {
                        stream,
                        frames: FrameBuf::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        kcm: Kcm::with_config(self.shared.cfg.machine.clone()),
                        busy: false,
                        read_closed: false,
                        interest: Interest::READ,
                    };
                    let index = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.slots.push(Entry { conn: None, gen: 0 });
                            self.slots.len() - 1
                        }
                    };
                    let token = token_of(index, self.slots[index].gen);
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        self.free.push(index);
                        continue;
                    }
                    self.slots[index].conn = Some(conn);
                    self.live += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Per-connection accept failures (e.g. the peer reset
                // before we got to it) are not server errors.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::ConnectionReset
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 4096];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return, // all wake writers gone
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Decodes a connection token; `None` for a stale generation (the
    /// connection closed and the slot moved on).
    fn take_conn(&mut self, token: u64) -> Option<(usize, Conn)> {
        let index = usize::try_from(token & 0xffff_ffff).ok()?.checked_sub(2)?;
        let gen = (token >> 32) as u32;
        let entry = self.slots.get_mut(index)?;
        if entry.gen != gen {
            return None;
        }
        entry.conn.take().map(|c| (index, c))
    }

    /// Returns a connection to its slot, refreshing its poller interest,
    /// or closes it if `keep` is false.
    fn park_conn(&mut self, index: usize, mut conn: Conn, keep: bool) {
        if !keep {
            self.close_slot(index, &conn);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            let token = token_of(index, self.slots[index].gen);
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                // Can't watch it any more: drop the connection.
                self.close_slot(index, &conn);
                return;
            }
            conn.interest = desired;
        }
        self.slots[index].conn = Some(conn);
    }

    /// Closes a connection's slot: unregisters the socket, reaps every
    /// cursor the connection owned (an in-flight pull's session comes
    /// back to a missing entry and is dropped there), and retires the
    /// slot's generation so stale events and completions miss.
    fn close_slot(&mut self, index: usize, conn: &Conn) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        // The owner token must be computed before the generation bump.
        let token = token_of(index, self.slots[index].gen);
        let before = self.cursors.len();
        self.cursors.retain(|_, c| c.owner != token);
        let reaped = (before - self.cursors.len()) as u64;
        if reaped > 0 {
            self.shared.metrics.lock().expect("metrics").cursors_reaped += reaped;
        }
        self.slots[index].gen = self.slots[index].gen.wrapping_add(1);
        self.free.push(index);
        self.live -= 1;
    }

    /// Reaps cursors idle past the configured deadline. Entries with a
    /// pull in flight (`session: None`) are skipped — their `last_used`
    /// refreshes when the session parks back.
    fn reap_idle_cursors(&mut self) {
        let idle = self.shared.cfg.cursor_idle;
        let before = self.cursors.len();
        self.cursors
            .retain(|_, c| c.session.is_none() || c.last_used.elapsed() <= idle);
        let reaped = (before - self.cursors.len()) as u64;
        if reaped > 0 {
            self.shared.metrics.lock().expect("metrics").cursors_reaped += reaped;
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some((index, mut conn)) = self.take_conn(token) else {
            return; // stale event for a closed connection
        };
        let mut keep = true;
        if ev.readable || ev.hangup {
            keep = self.do_read(&mut conn, token);
        }
        if keep && ev.writable && conn.pending_write() {
            keep = flush(&mut conn).is_ok();
        }
        if keep && conn.read_closed && !conn.busy && !conn.pending_write() {
            keep = false;
        }
        self.park_conn(index, conn, keep);
    }

    /// Reads whatever the socket has, feeds the decoder, and processes
    /// complete frames. Returns whether the connection stays open.
    fn do_read(&mut self, conn: &mut Conn, token: u64) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.frames.feed(&buf[..n]);
                    if n < buf.len() {
                        break; // likely drained; level-trigger re-reports
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.pump(conn, token)
    }

    /// Processes buffered complete frames while the connection has no
    /// request in flight. Returns whether the connection stays open.
    fn pump(&mut self, conn: &mut Conn, token: u64) -> bool {
        while !conn.busy {
            match conn.frames.next_frame() {
                Ok(Some(payload)) => {
                    if !self.handle_frame(conn, token, &payload) {
                        return false;
                    }
                }
                Ok(None) => break,
                // Framing errors have no resynchronization point; the
                // connection is the unit of failure.
                Err(_) => return false,
            }
        }
        true
    }

    /// Handles one request frame. Returns whether the connection stays
    /// open.
    fn handle_frame(&mut self, conn: &mut Conn, token: u64, payload: &[u8]) -> bool {
        let request = match Request::parse(payload) {
            Ok(request) => request,
            Err(why) => {
                let reply = Reply::Err {
                    class: "protocol".to_owned(),
                    message: why,
                };
                return queue_reply(conn, &reply.encode()).is_ok();
            }
        };
        let reply = match request {
            Request::Consult { source } => {
                // CONSULT replaces the connection's program (Kcm::consult
                // *adds* clauses; a service client re-sending its program
                // wants idempotence, not accumulation).
                let mut fresh = Kcm::with_config(self.shared.cfg.machine.clone());
                match fresh.load(source.as_str()) {
                    Ok(()) => {
                        conn.kcm = fresh;
                        self.shared.metrics.lock().expect("metrics").consults += 1;
                        Reply::Ok {
                            body: String::new(),
                        }
                    }
                    Err(e) => error_reply(&e, &self.shared, None),
                }
            }
            Request::Publish {
                name,
                source,
                step_budget,
            } => self.do_publish(&name, ProgramSource::Source(&source), step_budget),
            Request::PublishSnapshot {
                name,
                snapshot,
                step_budget,
            } => self.do_publish(&name, ProgramSource::Snapshot(&snapshot), step_budget),
            // Artifact export and incremental updates run on the loop
            // thread like PUBLISH/CONSULT do: serialization and
            // patch-or-relink are brief next to query execution, and the
            // registry's copy-on-write update means in-flight queries
            // never see a half-updated image.
            Request::Snapshot { name } => match self.shared.registry.snapshot(&name) {
                Ok(bytes) => Reply::Snapshot { bytes },
                Err(e) => error_reply(&e, &self.shared, None),
            },
            Request::Assert { name, clause } => {
                match self.shared.registry.assertz(&name, &clause) {
                    Ok(receipt) => Reply::Ok {
                        body: format!("name={name}\nversion={}\n", receipt.version),
                    },
                    Err(e) => error_reply(&e, &self.shared, None),
                }
            }
            Request::Retract { name, clause } => {
                match self.shared.registry.retract(&name, &clause) {
                    Ok((receipt, removed)) => Reply::Ok {
                        body: format!(
                            "name={name}\nversion={}\nremoved={removed}\n",
                            receipt.version
                        ),
                    },
                    Err(e) => error_reply(&e, &self.shared, None),
                }
            }
            Request::Stats => {
                let mut body = stats_body(&self.shared);
                body.push_str(&format!("cursors_open={}\n", self.cursors.len()));
                Reply::Ok { body }
            }
            Request::Shutdown => {
                self.shutting_down = true;
                if self.accepting {
                    let _ = self.poller.remove(self.listener.as_raw_fd());
                    self.accepting = false;
                }
                // The session ends with the acknowledgement: close once
                // the OK has flushed.
                conn.read_closed = true;
                Reply::Ok {
                    body: String::new(),
                }
            }
            Request::Query {
                tenant,
                query,
                enumerate_all,
                step_budget,
                cursor,
            } => {
                let outcome = if cursor {
                    self.dispatch_cursor_open(conn, token, tenant, query, step_budget)
                } else {
                    self.dispatch_query(conn, token, tenant, query, enumerate_all, step_budget)
                };
                match outcome {
                    None => return true, // accepted: the reply comes from a worker
                    Some(reply) => reply,
                }
            }
            Request::Next { id, count } => match self.dispatch_next(conn, token, id, count) {
                None => return true,
                Some(reply) => reply,
            },
            Request::Close { id } => match self.cursors.get(&id) {
                // The owner gate means the in-flight case is unreachable
                // here (the owner is busy while its pull is out), so a
                // matching entry always holds its session and can be
                // dropped outright.
                Some(c) if c.owner == token => {
                    self.cursors.remove(&id);
                    Reply::Ok {
                        body: format!("closed={id}\n"),
                    }
                }
                _ => unknown_cursor(id),
            },
        };
        queue_reply(conn, &reply.encode()).is_ok()
    }

    /// Publishes one program artifact — source text or binary snapshot —
    /// into the shared registry and renders the receipt.
    fn do_publish(&self, name: &str, source: ProgramSource<'_>, step_budget: Option<u64>) -> Reply {
        match self
            .shared
            .registry
            .publish(name, source, &self.shared.cfg.machine, step_budget)
        {
            Ok(receipt) => {
                self.shared.metrics.lock().expect("metrics").publishes += 1;
                let mut body = format!("name={name}\nversion={}\n", receipt.version);
                if let Some(evicted) = receipt.evicted {
                    body.push_str(&format!("evicted={evicted}\n"));
                }
                Reply::Ok { body }
            }
            Err(e) => error_reply(&e, &self.shared, None),
        }
    }

    /// Resolves the program a query addresses: the registry entry when a
    /// tenant is named (with the budget priority request > tenant >
    /// server default), the connection's consulted program otherwise.
    fn resolve_program(
        &self,
        conn: &Conn,
        tenant: Option<&str>,
        step_budget: Option<u64>,
    ) -> Result<Resolved, Reply> {
        match tenant {
            Some(name) => match self.shared.registry.lookup(name) {
                Ok(t) => {
                    let budget = step_budget
                        .or(t.step_budget)
                        .or(self.shared.cfg.default_step_budget);
                    Ok(Resolved {
                        image: Arc::clone(&t.image),
                        symbols: t.symbols.clone(),
                        config: self.shared.cfg.machine.clone(),
                        tenant: Some(t),
                        budget,
                    })
                }
                Err(e) => Err(error_reply(&e, &self.shared, None)),
            },
            None => match conn.kcm.shared_image() {
                Some(image) => Ok(Resolved {
                    image,
                    symbols: conn.kcm.symbols().clone(),
                    config: conn.kcm.config().clone(),
                    tenant: None,
                    budget: step_budget.or(self.shared.cfg.default_step_budget),
                }),
                None => Err(error_reply(&KcmError::NoProgram, &self.shared, None)),
            },
        }
    }

    /// Claims a per-tenant in-flight slot for a resolved target (a no-op
    /// `true` for connection-local programs). A `false` return has
    /// already been accounted as a tenant BUSY.
    fn claim_tenant(&self, tenant: &Option<Arc<Published>>) -> bool {
        let Some(t) = tenant else { return true };
        if t.stats
            .try_start_inflight(self.shared.cfg.tenant_inflight_cap)
        {
            return true;
        }
        self.shared.metrics.lock().expect("metrics").busy += 1;
        t.stats.busy.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Enqueues an item whose tenant slot (if any) is already claimed.
    /// `None` means in flight; `Some` is an immediate reply, with the
    /// claim released and (for a pull) the session restored.
    fn enqueue(&mut self, conn: &mut Conn, item: WorkItem) -> Option<Reply> {
        // try_send is the backpressure point: a full queue is the
        // client's problem (retry), never the server's memory.
        let jobs = self.jobs.as_ref().expect("queue open while looping");
        match jobs.try_send(item) {
            Ok(()) => {
                conn.busy = true;
                None
            }
            Err(e) => {
                let (full, item) = match e {
                    TrySendError::Full(item) => (true, item),
                    TrySendError::Disconnected(item) => (false, item),
                };
                let tenant = match item {
                    WorkItem::Query { tenant, .. } | WorkItem::CursorOpen { tenant, .. } => tenant,
                    WorkItem::CursorNext {
                        cursor_id,
                        session,
                        tenant,
                        ..
                    } => {
                        // Put the session back so the cursor survives
                        // the rejected pull.
                        if let Some(c) = self.cursors.get_mut(&cursor_id) {
                            c.session = Some(session);
                        }
                        tenant
                    }
                };
                release_tenant(&tenant);
                if full {
                    self.shared.metrics.lock().expect("metrics").busy += 1;
                    if let Some(t) = &tenant {
                        t.stats.busy.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Reply::Busy)
                } else {
                    Some(error_reply(
                        &KcmError::Harness("server is shutting down".to_owned()),
                        &self.shared,
                        None,
                    ))
                }
            }
        }
    }

    /// Resolves and enqueues a query. `None` means the request is in
    /// flight (the worker's completion will carry the reply); `Some` is
    /// an immediate reply (BUSY or an error).
    fn dispatch_query(
        &mut self,
        conn: &mut Conn,
        token: u64,
        tenant: Option<String>,
        query: String,
        enumerate_all: bool,
        step_budget: Option<u64>,
    ) -> Option<Reply> {
        let resolved = match self.resolve_program(conn, tenant.as_deref(), step_budget) {
            Ok(r) => r,
            Err(reply) => return Some(reply),
        };
        if !self.claim_tenant(&resolved.tenant) {
            return Some(Reply::Busy);
        }
        let opts = QueryOpts {
            enumerate_all,
            step_budget: resolved.budget,
            trace: 0,
            tier: self.shared.cfg.tier,
        };
        let item = WorkItem::Query {
            token,
            image: resolved.image,
            symbols: resolved.symbols,
            config: resolved.config,
            job: QueryJob::with_opts(query, opts),
            tenant: resolved.tenant.clone(),
        };
        let reply = self.enqueue(conn, item);
        if reply.is_none() {
            self.shared.metrics.lock().expect("metrics").queries += 1;
            if let Some(t) = &resolved.tenant {
                t.stats.queries.fetch_add(1, Ordering::Relaxed);
            }
        }
        reply
    }

    /// Opens a cursor: allocates an id, parks a sessionless entry, and
    /// ships the compilation to a worker. `None` means in flight.
    fn dispatch_cursor_open(
        &mut self,
        conn: &mut Conn,
        token: u64,
        tenant: Option<String>,
        query: String,
        step_budget: Option<u64>,
    ) -> Option<Reply> {
        let open_here = self.cursors.values().filter(|c| c.owner == token).count();
        if open_here >= self.shared.cfg.cursors_per_conn {
            self.shared.metrics.lock().expect("metrics").busy += 1;
            return Some(Reply::Busy);
        }
        let resolved = match self.resolve_program(conn, tenant.as_deref(), step_budget) {
            Ok(r) => r,
            Err(reply) => return Some(reply),
        };
        if !self.claim_tenant(&resolved.tenant) {
            return Some(Reply::Busy);
        }
        let opts = QueryOpts {
            // A cursor session enumerates by construction; the flag only
            // matters if the session layer ever consults it.
            enumerate_all: true,
            step_budget: resolved.budget,
            trace: 0,
            tier: self.shared.cfg.tier,
        };
        let cursor_id = self.next_cursor_id;
        self.next_cursor_id += 1;
        let item = WorkItem::CursorOpen {
            token,
            cursor_id,
            image: resolved.image,
            symbols: resolved.symbols,
            config: resolved.config,
            query,
            opts,
            tenant: resolved.tenant.clone(),
        };
        let reply = self.enqueue(conn, item);
        if reply.is_none() {
            self.cursors.insert(
                cursor_id,
                Cursor {
                    owner: token,
                    session: None,
                    tenant: resolved.tenant.clone(),
                    last_used: Instant::now(),
                },
            );
            self.shared.metrics.lock().expect("metrics").queries += 1;
            if let Some(t) = &resolved.tenant {
                t.stats.queries.fetch_add(1, Ordering::Relaxed);
            }
        }
        reply
    }

    /// Ships a cursor's session to a worker for one batch. `None` means
    /// in flight.
    fn dispatch_next(
        &mut self,
        conn: &mut Conn,
        token: u64,
        id: u64,
        count: Option<u64>,
    ) -> Option<Reply> {
        let Some(cursor) = self.cursors.get_mut(&id) else {
            return Some(unknown_cursor(id));
        };
        if cursor.owner != token {
            return Some(unknown_cursor(id));
        }
        let Some(session) = cursor.session.take() else {
            // Unreachable through the protocol (the owner is busy while
            // its pull is out); answer BUSY rather than corrupt state.
            return Some(Reply::Busy);
        };
        cursor.last_used = Instant::now();
        let tenant = cursor.tenant.clone();
        if !self.claim_tenant(&tenant) {
            // Re-borrow: claim_tenant released the map borrow.
            if let Some(c) = self.cursors.get_mut(&id) {
                c.session = Some(session);
            }
            return Some(Reply::Busy);
        }
        let count = count
            .unwrap_or(1)
            .min(self.shared.cfg.cursor_batch_cap.max(1));
        let item = WorkItem::CursorNext {
            token,
            cursor_id: id,
            session,
            count,
            tenant,
        };
        self.enqueue(conn, item)
    }

    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            // Settle the cursor table before the connection: even if the
            // connection is gone, a returning session must be parked or
            // dropped, never leaked in the channel.
            if let Some(ret) = done.cursor {
                match ret.session {
                    Some(session) => {
                        if let Some(cursor) = self.cursors.get_mut(&ret.id) {
                            cursor.session = Some(session);
                            cursor.last_used = Instant::now();
                        }
                        // else: the owner closed; close_slot already
                        // reaped the entry and the session drops here.
                    }
                    None => {
                        // Open failed, enumeration exhausted, or a slice
                        // error: the cursor is finished.
                        self.cursors.remove(&ret.id);
                    }
                }
            }
            let Some((index, mut conn)) = self.take_conn(done.token) else {
                continue; // the connection went away; the work still counted
            };
            conn.busy = false;
            let mut keep = queue_reply(&mut conn, &done.payload).is_ok();
            if keep {
                keep = self.pump(&mut conn, done.token);
            }
            if keep && conn.read_closed && !conn.busy && !conn.pending_write() {
                keep = false;
            }
            self.park_conn(index, conn, keep);
        }
    }

    /// During shutdown: close every connection that has nothing left to
    /// deliver. Busy connections finish their in-flight request first.
    fn sweep_for_drain(&mut self) {
        for index in 0..self.slots.len() {
            let Some(conn) = self.slots[index].conn.take() else {
                continue;
            };
            if !conn.busy && !conn.pending_write() {
                self.park_conn(index, conn, false);
            } else {
                self.slots[index].conn = Some(conn);
            }
        }
    }
}

/// Appends a framed reply to the connection's write buffer and pushes
/// as much as the socket will take.
fn queue_reply(conn: &mut Conn, payload: &[u8]) -> std::io::Result<()> {
    conn.wbuf.extend_from_slice(&encode_frame(payload));
    flush(conn)
}

/// Writes pending bytes until the socket would block.
fn flush(conn: &mut Conn) -> std::io::Result<()> {
    while conn.pending_write() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted no bytes",
                ))
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if !conn.pending_write() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}

/// The program resolution a dispatch works from.
struct Resolved {
    image: Arc<CodeImage>,
    symbols: SymbolTable,
    config: MachineConfig,
    tenant: Option<Arc<Published>>,
    budget: Option<u64>,
}

/// The reply for a `NEXT`/`CLOSE` that doesn't address a live cursor the
/// requester owns — one message for missing, closed, expired, and
/// someone-else's ids alike.
fn unknown_cursor(id: u64) -> Reply {
    Reply::Err {
        class: "protocol".to_owned(),
        message: format!("unknown cursor {id}"),
    }
}

/// Releases the per-tenant in-flight slot a dispatch claimed.
fn release_tenant(tenant: &Option<Arc<Published>>) {
    if let Some(t) = tenant {
        t.stats.finish_inflight();
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<WorkItem>>,
    shared: &Shared,
    done_tx: &mpsc::Sender<Completion>,
    wake_tx: &UnixStream,
) {
    loop {
        // Hold the lock only to pop; run the session outside it.
        let item = match rx.lock().expect("worker queue").recv() {
            Ok(item) => item,
            Err(_) => return, // queue closed: drained
        };
        let done = match item {
            WorkItem::Query {
                token,
                image,
                symbols,
                config,
                job,
                tenant,
            } => {
                let outcome = run_session(&image, &symbols, &config, &job);
                let tstats = tenant.as_ref().map(|t| t.stats.as_ref());
                let reply = match outcome {
                    Ok(outcome) => {
                        account_served(shared, tstats, &outcome);
                        Reply::Ok {
                            body: render_outcome(&outcome),
                        }
                    }
                    Err(e) => error_reply(&e, shared, tstats),
                };
                release_tenant(&tenant);
                Completion {
                    token,
                    payload: reply.encode(),
                    cursor: None,
                }
            }
            WorkItem::CursorOpen {
                token,
                cursor_id,
                image,
                symbols,
                config,
                query,
                opts,
                tenant,
            } => {
                let tstats = tenant.as_ref().map(|t| t.stats.as_ref());
                let (reply, session) = match open_session(&image, &symbols, &config, &query, &opts)
                {
                    Ok(session) => {
                        shared.metrics.lock().expect("metrics").cursors_opened += 1;
                        (
                            Reply::Ok {
                                body: format!("cursor={cursor_id}\n"),
                            },
                            Some(Box::new(session)),
                        )
                    }
                    Err(e) => (error_reply(&e, shared, tstats), None),
                };
                release_tenant(&tenant);
                Completion {
                    token,
                    payload: reply.encode(),
                    cursor: Some(CursorReturn {
                        id: cursor_id,
                        session,
                    }),
                }
            }
            WorkItem::CursorNext {
                token,
                cursor_id,
                mut session,
                count,
                tenant,
            } => {
                let before_stats = *session.totals();
                let before_output = session.output().len();
                let mut answers = Vec::new();
                let mut exhausted = false;
                let mut failure = None;
                while (answers.len() as u64) < count {
                    match session.next_step() {
                        Ok(Some(step)) => answers.push(step.solution),
                        Ok(None) => {
                            exhausted = true;
                            break;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                // Deltas come off the session's running totals so the
                // slice that discovers exhaustion is still charged.
                let batch_stats = session.totals().delta_since(&before_stats);
                let batch_output = session.output()[before_output..].to_owned();
                let tstats = tenant.as_ref().map(|t| t.stats.as_ref());
                let reply = match &failure {
                    // A slice error kills the cursor; answers pulled
                    // earlier in this batch die with it (the client
                    // never saw them, and the dead session cannot be
                    // resumed to re-derive them).
                    Some(e) => error_reply(e, shared, tstats),
                    None => {
                        account_batch(shared, tstats, answers.len() as u64, &batch_stats);
                        Reply::Ok {
                            body: render_batch(
                                cursor_id,
                                &answers,
                                exhausted,
                                &batch_stats,
                                &batch_output,
                            ),
                        }
                    }
                };
                let keep = failure.is_none() && !exhausted;
                release_tenant(&tenant);
                Completion {
                    token,
                    payload: reply.encode(),
                    cursor: Some(CursorReturn {
                        id: cursor_id,
                        session: keep.then_some(session),
                    }),
                }
            }
        };
        // A gone connection is fine — the work was still done and
        // counted; the loop drops completions with stale tokens.
        let _ = done_tx.send(done);
        // Best-effort wake: if the pipe is full a wake is already
        // pending, and the loop's tick catches anything else.
        let _ = (&*wake_tx).write(&[1]);
    }
}

/// Accounts one served cursor batch into the aggregate and per-tenant
/// counters. Cursor batches count work (`solutions`, `inferences`,
/// `cycles`, `steps`) like queries do, but under the `cursor_*` serving
/// counters instead of `served`.
fn account_batch(shared: &Shared, tenant: Option<&TenantStats>, answers: u64, stats: &RunStats) {
    {
        let mut m = shared.metrics.lock().expect("metrics");
        m.cursor_batches += 1;
        m.cursor_answers += answers;
        m.solutions += answers;
        m.inferences += stats.inferences;
        m.cycles += stats.cycles;
        m.steps += stats.instructions;
    }
    if let Some(t) = tenant {
        t.solutions.fetch_add(answers, Ordering::Relaxed);
        t.inferences.fetch_add(stats.inferences, Ordering::Relaxed);
        t.cycles.fetch_add(stats.cycles, Ordering::Relaxed);
        t.steps.fetch_add(stats.instructions, Ordering::Relaxed);
    }
}

fn account_served(shared: &Shared, tenant: Option<&TenantStats>, outcome: &Outcome) {
    let solutions = outcome.solutions.len() as u64;
    {
        let mut m = shared.metrics.lock().expect("metrics");
        m.served += 1;
        m.solutions += solutions;
        m.inferences += outcome.stats.inferences;
        m.cycles += outcome.stats.cycles;
        m.steps += outcome.stats.instructions;
        m.switch_hits += outcome.profile.switches.hits;
        m.switch_misses += outcome.profile.switches.misses;
        m.switch_probes += outcome.profile.switches.probes;
        m.switch_depth2 += outcome.profile.switches.depth2;
    }
    if let Some(t) = tenant {
        t.served.fetch_add(1, Ordering::Relaxed);
        t.solutions.fetch_add(solutions, Ordering::Relaxed);
        t.inferences
            .fetch_add(outcome.stats.inferences, Ordering::Relaxed);
        t.cycles.fetch_add(outcome.stats.cycles, Ordering::Relaxed);
        t.steps
            .fetch_add(outcome.stats.instructions, Ordering::Relaxed);
    }
}

fn error_reply(e: &KcmError, shared: &Shared, tenant: Option<&TenantStats>) -> Reply {
    let class = error_class(e);
    {
        let mut m = shared.metrics.lock().expect("metrics");
        if class == "budget" {
            m.budget_stops += 1;
        } else {
            m.errors += 1;
        }
    }
    if let Some(t) = tenant {
        if class == "budget" {
            t.budget_stops.fetch_add(1, Ordering::Relaxed);
        } else {
            t.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    Reply::Err {
        class: class.to_owned(),
        message: e.to_string(),
    }
}

/// The full `STATS` body: the aggregate counters, the registry size, and
/// per-tenant counters sorted by name.
fn stats_body(shared: &Shared) -> String {
    let mut body = shared.metrics.lock().expect("metrics").render();
    let tenants = shared.registry.tenants();
    body.push_str(&format!("programs={}\n", tenants.len()));
    for t in tenants {
        let s = t.stats.snapshot();
        let n = &t.name;
        body.push_str(&format!("tenant.{n}.version={}\n", t.version));
        body.push_str(&format!("tenant.{n}.queries={}\n", s.queries));
        body.push_str(&format!("tenant.{n}.served={}\n", s.served));
        body.push_str(&format!("tenant.{n}.busy={}\n", s.busy));
        body.push_str(&format!("tenant.{n}.budget_stops={}\n", s.budget_stops));
        body.push_str(&format!("tenant.{n}.errors={}\n", s.errors));
        body.push_str(&format!("tenant.{n}.solutions={}\n", s.solutions));
        body.push_str(&format!("tenant.{n}.inferences={}\n", s.inferences));
        body.push_str(&format!("tenant.{n}.cycles={}\n", s.cycles));
        body.push_str(&format!("tenant.{n}.steps={}\n", s.steps));
        body.push_str(&format!(
            "tenant.{n}.inflight={}\n",
            t.stats.inflight.load(Ordering::Relaxed)
        ));
    }
    body
}
