//! The query server: one nonblocking readiness loop owning every
//! connection, feeding a bounded job queue fanned across session-pool
//! worker threads.
//!
//! Concurrency layout:
//!
//! * one **event-loop thread** (the caller of [`Server::run`]) owns the
//!   listener and *all* connection sockets, nonblocking, multiplexed
//!   through [`crate::poll::Poller`] (epoll on Linux). Each connection
//!   carries its own [`FrameBuf`] decode state and write buffer, so a
//!   client dribbling a frame one byte per 100 ms costs a buffer slot,
//!   not a thread — 10k idle connections cost ~0 threads;
//! * a fixed set of **worker threads** executes queries as isolated pool
//!   sessions ([`kcm_system::pool::run_session`]) pulled from one bounded
//!   queue; the compiled image travels to the worker as an `Arc`, exactly
//!   as [`kcm_system::SessionPool`] ships it. Completions come back over
//!   a channel plus a wake pipe byte; the loop also drains completions on
//!   every tick, so a lost wake delays a reply by at most one tick;
//! * the queue is a `sync_channel(queue_depth)`: when it is full the
//!   loop answers `BUSY` immediately instead of queueing without bound —
//!   backpressure is explicit and visible to clients. While a
//!   connection's request is in flight its read interest is paused, so a
//!   pipelining client is flow-controlled by TCP, not by server memory;
//! * published programs live in a shared [`ProgramRegistry`]; `PUBLISH`
//!   and `CONSULT` compile on the loop thread (compilation is brief and
//!   amortized over every query that follows), queries run on workers.
//!
//! Shutdown is graceful and self-contained: `SHUTDOWN` is handled on the
//! loop itself, which stops accepting, closes idle connections, lets
//! in-flight requests finish and flush, then closes the queue so workers
//! drain and exit. The previous thread-per-connection design had to wake
//! its blocking accept loop by self-connecting to
//! `listener.local_addr()` — the *unspecified* address
//! (`0.0.0.0:<port>`) for typical binds, so the wake could fail and hang
//! the drain. The readiness loop's timed wait is the flag-check tick
//! that replaces it; no self-connect exists to go wrong.

use crate::poll::{Event, Interest, Poller};
use crate::protocol::{encode_frame, render_outcome, FrameBuf, Reply, Request};
use kcm_arch::SymbolTable;
use kcm_compiler::CodeImage;
use kcm_system::pool::run_session;
use kcm_system::registry::{ProgramRegistry, Published, TenantStats};
use kcm_system::{error_class, Kcm, KcmError, MachineConfig, Outcome, QueryJob, QueryOpts, Tier};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The event loop's wait tick: bounds how long a missed wake byte can
/// delay a completion and how stale the drain check can be.
const READ_TICK: Duration = Duration::from_millis(100);

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the worker wake pipe.
const TOKEN_WAKE: u64 = 1;
/// Connection tokens start here (low 32 bits; generation above).
const FIRST_CONN: u64 = 2;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Step budget applied to requests that don't carry their own
    /// `BUDGET` (for tenant queries, after the tenant's own publish-time
    /// budget); `None` leaves runaway queries to the machine's fuel cap.
    pub default_step_budget: Option<u64>,
    /// Capacity of the shared program registry; publishing a new name
    /// into a full registry evicts the least-recently-used tenant.
    pub max_programs: usize,
    /// Execution tier for every served query. Defaults to
    /// [`Tier::Native`]: a service asks "what is the answer", not "how
    /// fast was the 1989 hardware", and the native tier returns identical
    /// solutions, output and error classes several times faster. Set
    /// [`Tier::Cycle`] for fidelity runs where the `STATS` cycle counter
    /// must reflect the simulated machine (it reads 0 under the native
    /// tier; the `steps` counter is the tier-independent work measure).
    pub tier: Tier,
    /// Machine configuration for every session.
    pub machine: MachineConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            queue_depth: 64,
            default_step_budget: Some(50_000_000),
            max_programs: 64,
            tier: Tier::Native,
            machine: MachineConfig::default(),
        }
    }
}

/// Server-wide aggregate metrics, reported by `STATS` and returned by
/// [`Server::run`]. `STATS` additionally renders per-tenant counters
/// from the registry (`tenant.<name>.<counter>=` lines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Programs consulted (per-connection session mode).
    pub consults: u64,
    /// Programs published into the shared registry.
    pub publishes: u64,
    /// Queries accepted onto the queue.
    pub queries: u64,
    /// Queries answered with a completed outcome.
    pub served: u64,
    /// Queries rejected with `BUSY` (queue full).
    pub busy: u64,
    /// Queries stopped by the step budget.
    pub budget_stops: u64,
    /// Queries failed with any other error.
    pub errors: u64,
    /// Solutions across served queries.
    pub solutions: u64,
    /// Logical inferences across served queries.
    pub inferences: u64,
    /// Simulated KCM cycles across served queries; stays 0 when serving
    /// on the (default) native tier, which has no clock.
    pub cycles: u64,
    /// Retired machine instructions across served queries — the
    /// tier-independent work counter (nonzero on both tiers).
    pub steps: u64,
    /// Clause-indexing switch dispatches that found their key, across
    /// served queries (tier-independent, like `steps`).
    pub switch_hits: u64,
    /// Switch dispatches that missed their table.
    pub switch_misses: u64,
    /// Switch table probes charged (the simulated linear-scan cost the
    /// hash side table avoids paying on the host).
    pub switch_probes: u64,
    /// Second-level (depth-2) switch dispatches taken.
    pub switch_depth2: u64,
}

impl ServeMetrics {
    /// The `STATS` reply's aggregate section: one `key=value` line per
    /// counter.
    pub fn render(&self) -> String {
        format!(
            "connections={}\nconsults={}\npublishes={}\nqueries={}\nserved={}\nbusy={}\nbudget_stops={}\nerrors={}\nsolutions={}\ninferences={}\ncycles={}\nsteps={}\nswitch_hits={}\nswitch_misses={}\nswitch_probes={}\nswitch_depth2={}\n",
            self.connections,
            self.consults,
            self.publishes,
            self.queries,
            self.served,
            self.busy,
            self.budget_stops,
            self.errors,
            self.solutions,
            self.inferences,
            self.cycles,
            self.steps,
            self.switch_hits,
            self.switch_misses,
            self.switch_probes,
            self.switch_depth2
        )
    }
}

/// One queued query: everything a worker needs to run the session, plus
/// the routing information for the reply.
struct WorkItem {
    /// Connection token (index + generation) the reply belongs to.
    token: u64,
    image: Arc<CodeImage>,
    symbols: SymbolTable,
    config: MachineConfig,
    job: QueryJob,
    /// The resolved tenant, when this is a registry query: holding the
    /// `Arc` keeps the program alive across re-publish/eviction, and the
    /// worker mirrors its accounting into the tenant's stats.
    tenant: Option<Arc<Published>>,
}

/// A finished query on its way back to the event loop.
struct Completion {
    token: u64,
    /// The encoded reply payload (rendered on the worker; the loop only
    /// frames and writes it).
    payload: String,
}

struct Shared {
    cfg: ServeConfig,
    metrics: Mutex<ServeMetrics>,
    registry: ProgramRegistry,
}

/// A bound, not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: SyncSender<WorkItem>,
    done_rx: Receiver<Completion>,
    wake_rx: UnixStream,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and spawns the worker threads. `addr` may name port 0
    /// for an ephemeral port; read it back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let (job_tx, job_rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_depth.max(1));
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        // Both ends nonblocking: the loop drains without blocking, and a
        // worker whose wake byte won't fit (pipe already full of wakes)
        // just drops it — the pending byte or the tick wakes the loop.
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            registry: ProgramRegistry::new(cfg.max_programs),
            metrics: Mutex::new(ServeMetrics::default()),
            cfg,
        });
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let shared = Arc::clone(&shared);
                let done_tx = done_tx.clone();
                let wake_tx = wake_tx.try_clone()?;
                Ok(std::thread::spawn(move || {
                    worker_loop(&job_rx, &shared, &done_tx, &wake_tx);
                }))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            listener,
            shared,
            jobs: job_tx,
            done_rx,
            wake_rx,
            workers,
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends SHUTDOWN, then drains and returns the
    /// final metrics. The calling thread *is* the event loop; no threads
    /// are spawned per connection.
    ///
    /// # Errors
    ///
    /// Propagates listener/poller socket errors; per-connection errors
    /// only end that connection.
    pub fn run(self) -> std::io::Result<ServeMetrics> {
        let Server {
            listener,
            shared,
            jobs,
            done_rx,
            wake_rx,
            workers,
        } = self;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let mut el = EventLoop {
            listener,
            poller,
            shared: Arc::clone(&shared),
            jobs: Some(jobs),
            done_rx,
            wake_rx,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            shutting_down: false,
            accepting: true,
        };
        el.run_loop()?;
        // Close the queue: workers finish what was accepted and exit.
        el.jobs = None;
        for w in workers {
            let _ = w.join();
        }
        let metrics = shared.metrics.lock().expect("metrics").clone();
        Ok(metrics)
    }
}

/// One connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Incremental frame decoder: partial length lines and payloads
    /// survive across readiness events by construction.
    frames: FrameBuf,
    /// Pending reply bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// This connection's session-mode program state.
    kcm: Kcm,
    /// A request is with the workers; reads are paused and no further
    /// frame is processed until its completion, preserving per-connection
    /// FIFO order.
    busy: bool,
    /// The peer sent EOF (or SHUTDOWN ended the session): no more input
    /// will be processed; close once in-flight work has flushed.
    read_closed: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.busy && !self.read_closed,
            writable: self.pending_write(),
        }
    }
}

/// A connection slot with a generation counter, so a completion for a
/// closed connection can never be delivered to the slot's next tenant.
struct Entry {
    conn: Option<Conn>,
    gen: u32,
}

fn token_of(index: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | (index as u64 + FIRST_CONN)
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    shared: Arc<Shared>,
    /// `Some` while accepting queries; dropped after the loop exits so
    /// the workers drain.
    jobs: Option<SyncSender<WorkItem>>,
    done_rx: Receiver<Completion>,
    wake_rx: UnixStream,
    slots: Vec<Entry>,
    free: Vec<usize>,
    live: usize,
    shutting_down: bool,
    accepting: bool,
}

impl EventLoop {
    fn run_loop(&mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.poller.wait(&mut events, READ_TICK)?;
            for ev in std::mem::take(&mut events) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready()?,
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.conn_ready(token, ev),
                }
            }
            // Completions are drained every pass regardless of wake
            // bytes: the timed wait above is the fallback that makes a
            // lost wake a latency blip, not a hang.
            self.drain_completions();
            if self.shutting_down {
                self.sweep_for_drain();
                if self.live == 0 {
                    return Ok(());
                }
            }
        }
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutting_down {
                        continue; // drop it: no new sessions during drain
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared.metrics.lock().expect("metrics").connections += 1;
                    let conn = Conn {
                        stream,
                        frames: FrameBuf::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        kcm: Kcm::with_config(self.shared.cfg.machine.clone()),
                        busy: false,
                        read_closed: false,
                        interest: Interest::READ,
                    };
                    let index = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.slots.push(Entry { conn: None, gen: 0 });
                            self.slots.len() - 1
                        }
                    };
                    let token = token_of(index, self.slots[index].gen);
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        self.free.push(index);
                        continue;
                    }
                    self.slots[index].conn = Some(conn);
                    self.live += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Per-connection accept failures (e.g. the peer reset
                // before we got to it) are not server errors.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::ConnectionReset
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 4096];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return, // all wake writers gone
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Decodes a connection token; `None` for a stale generation (the
    /// connection closed and the slot moved on).
    fn take_conn(&mut self, token: u64) -> Option<(usize, Conn)> {
        let index = usize::try_from(token & 0xffff_ffff).ok()?.checked_sub(2)?;
        let gen = (token >> 32) as u32;
        let entry = self.slots.get_mut(index)?;
        if entry.gen != gen {
            return None;
        }
        entry.conn.take().map(|c| (index, c))
    }

    /// Returns a connection to its slot, refreshing its poller interest,
    /// or closes it if `keep` is false.
    fn park_conn(&mut self, index: usize, mut conn: Conn, keep: bool) {
        if !keep {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.slots[index].gen = self.slots[index].gen.wrapping_add(1);
            self.free.push(index);
            self.live -= 1;
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            let token = token_of(index, self.slots[index].gen);
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                // Can't watch it any more: drop the connection.
                let _ = self.poller.remove(conn.stream.as_raw_fd());
                self.slots[index].gen = self.slots[index].gen.wrapping_add(1);
                self.free.push(index);
                self.live -= 1;
                return;
            }
            conn.interest = desired;
        }
        self.slots[index].conn = Some(conn);
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some((index, mut conn)) = self.take_conn(token) else {
            return; // stale event for a closed connection
        };
        let mut keep = true;
        if ev.readable || ev.hangup {
            keep = self.do_read(&mut conn, token);
        }
        if keep && ev.writable && conn.pending_write() {
            keep = flush(&mut conn).is_ok();
        }
        if keep && conn.read_closed && !conn.busy && !conn.pending_write() {
            keep = false;
        }
        self.park_conn(index, conn, keep);
    }

    /// Reads whatever the socket has, feeds the decoder, and processes
    /// complete frames. Returns whether the connection stays open.
    fn do_read(&mut self, conn: &mut Conn, token: u64) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.frames.feed(&buf[..n]);
                    if n < buf.len() {
                        break; // likely drained; level-trigger re-reports
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.pump(conn, token)
    }

    /// Processes buffered complete frames while the connection has no
    /// request in flight. Returns whether the connection stays open.
    fn pump(&mut self, conn: &mut Conn, token: u64) -> bool {
        while !conn.busy {
            match conn.frames.next_frame() {
                Ok(Some(payload)) => {
                    if !self.handle_frame(conn, token, &payload) {
                        return false;
                    }
                }
                Ok(None) => break,
                // Framing errors have no resynchronization point; the
                // connection is the unit of failure.
                Err(_) => return false,
            }
        }
        true
    }

    /// Handles one request frame. Returns whether the connection stays
    /// open.
    fn handle_frame(&mut self, conn: &mut Conn, token: u64, payload: &str) -> bool {
        let request = match Request::parse(payload) {
            Ok(request) => request,
            Err(why) => {
                let reply = Reply::Err {
                    class: "protocol".to_owned(),
                    message: why,
                };
                return queue_reply(conn, &reply.encode()).is_ok();
            }
        };
        let reply = match request {
            Request::Consult { source } => {
                // CONSULT replaces the connection's program (Kcm::consult
                // *adds* clauses; a service client re-sending its program
                // wants idempotence, not accumulation).
                let mut fresh = Kcm::with_config(self.shared.cfg.machine.clone());
                match fresh.consult(&source) {
                    Ok(()) => {
                        conn.kcm = fresh;
                        self.shared.metrics.lock().expect("metrics").consults += 1;
                        Reply::Ok {
                            body: String::new(),
                        }
                    }
                    Err(e) => error_reply(&e, &self.shared, None),
                }
            }
            Request::Publish {
                name,
                source,
                step_budget,
            } => match self.shared.registry.publish(
                &name,
                &source,
                &self.shared.cfg.machine,
                step_budget,
            ) {
                Ok(receipt) => {
                    self.shared.metrics.lock().expect("metrics").publishes += 1;
                    let mut body = format!("name={name}\nversion={}\n", receipt.version);
                    if let Some(evicted) = receipt.evicted {
                        body.push_str(&format!("evicted={evicted}\n"));
                    }
                    Reply::Ok { body }
                }
                Err(e) => error_reply(&e, &self.shared, None),
            },
            Request::Stats => Reply::Ok {
                body: stats_body(&self.shared),
            },
            Request::Shutdown => {
                self.shutting_down = true;
                if self.accepting {
                    let _ = self.poller.remove(self.listener.as_raw_fd());
                    self.accepting = false;
                }
                // The session ends with the acknowledgement: close once
                // the OK has flushed.
                conn.read_closed = true;
                Reply::Ok {
                    body: String::new(),
                }
            }
            Request::Query {
                tenant,
                query,
                enumerate_all,
                step_budget,
            } => {
                match self.dispatch_query(conn, token, tenant, query, enumerate_all, step_budget) {
                    None => return true, // accepted: the reply comes from a worker
                    Some(reply) => reply,
                }
            }
        };
        queue_reply(conn, &reply.encode()).is_ok()
    }

    /// Resolves and enqueues a query. `None` means the request is in
    /// flight (the worker's completion will carry the reply); `Some` is
    /// an immediate reply (BUSY or an error).
    fn dispatch_query(
        &mut self,
        conn: &mut Conn,
        token: u64,
        tenant: Option<String>,
        query: String,
        enumerate_all: bool,
        step_budget: Option<u64>,
    ) -> Option<Reply> {
        let (image, symbols, config, tenant_entry, budget) = match &tenant {
            Some(name) => match self.shared.registry.lookup(name) {
                Ok(t) => {
                    let budget = step_budget
                        .or(t.step_budget)
                        .or(self.shared.cfg.default_step_budget);
                    (
                        Arc::clone(&t.image),
                        t.symbols.clone(),
                        self.shared.cfg.machine.clone(),
                        Some(t),
                        budget,
                    )
                }
                Err(e) => return Some(error_reply(&e, &self.shared, None)),
            },
            None => match conn.kcm.shared_image() {
                Some(image) => (
                    image,
                    conn.kcm.symbols().clone(),
                    conn.kcm.config().clone(),
                    None,
                    step_budget.or(self.shared.cfg.default_step_budget),
                ),
                None => return Some(error_reply(&KcmError::NoProgram, &self.shared, None)),
            },
        };
        let opts = QueryOpts {
            enumerate_all,
            step_budget: budget,
            trace: 0,
            tier: self.shared.cfg.tier,
        };
        let item = WorkItem {
            token,
            image,
            symbols,
            config,
            job: QueryJob::with_opts(query, opts),
            tenant: tenant_entry,
        };
        // try_send is the backpressure point: a full queue is the
        // client's problem (retry), never the server's memory.
        let jobs = self.jobs.as_ref().expect("queue open while looping");
        match jobs.try_send(item) {
            Ok(()) => {
                self.shared.metrics.lock().expect("metrics").queries += 1;
                if let Some(t) = tenant_stats_of(&self.shared, tenant.as_deref()) {
                    t.queries.fetch_add(1, Ordering::Relaxed);
                }
                conn.busy = true;
                None
            }
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.lock().expect("metrics").busy += 1;
                if let Some(t) = tenant_stats_of(&self.shared, tenant.as_deref()) {
                    t.busy.fetch_add(1, Ordering::Relaxed);
                }
                Some(Reply::Busy)
            }
            Err(TrySendError::Disconnected(_)) => Some(error_reply(
                &KcmError::Harness("server is shutting down".to_owned()),
                &self.shared,
                None,
            )),
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            let Some((index, mut conn)) = self.take_conn(done.token) else {
                continue; // the connection went away; the work still counted
            };
            conn.busy = false;
            let mut keep = queue_reply(&mut conn, &done.payload).is_ok();
            if keep {
                keep = self.pump(&mut conn, done.token);
            }
            if keep && conn.read_closed && !conn.busy && !conn.pending_write() {
                keep = false;
            }
            self.park_conn(index, conn, keep);
        }
    }

    /// During shutdown: close every connection that has nothing left to
    /// deliver. Busy connections finish their in-flight request first.
    fn sweep_for_drain(&mut self) {
        for index in 0..self.slots.len() {
            let Some(conn) = self.slots[index].conn.take() else {
                continue;
            };
            if !conn.busy && !conn.pending_write() {
                self.park_conn(index, conn, false);
            } else {
                self.slots[index].conn = Some(conn);
            }
        }
    }
}

/// Appends a framed reply to the connection's write buffer and pushes
/// as much as the socket will take.
fn queue_reply(conn: &mut Conn, payload: &str) -> std::io::Result<()> {
    conn.wbuf
        .extend_from_slice(encode_frame(payload).as_bytes());
    flush(conn)
}

/// Writes pending bytes until the socket would block.
fn flush(conn: &mut Conn) -> std::io::Result<()> {
    while conn.pending_write() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted no bytes",
                ))
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if !conn.pending_write() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}

fn worker_loop(
    rx: &Mutex<Receiver<WorkItem>>,
    shared: &Shared,
    done_tx: &mpsc::Sender<Completion>,
    wake_tx: &UnixStream,
) {
    loop {
        // Hold the lock only to pop; run the session outside it.
        let item = match rx.lock().expect("worker queue").recv() {
            Ok(item) => item,
            Err(_) => return, // queue closed: drained
        };
        let outcome = run_session(&item.image, &item.symbols, &item.config, &item.job);
        let tenant = item.tenant.as_ref().map(|t| t.stats.as_ref());
        let reply = match outcome {
            Ok(outcome) => {
                account_served(shared, tenant, &outcome);
                Reply::Ok {
                    body: render_outcome(&outcome),
                }
            }
            Err(e) => error_reply(&e, shared, tenant),
        };
        // A gone connection is fine — the work was still done and
        // counted; the loop drops completions with stale tokens.
        let _ = done_tx.send(Completion {
            token: item.token,
            payload: reply.encode(),
        });
        // Best-effort wake: if the pipe is full a wake is already
        // pending, and the loop's tick catches anything else.
        let _ = (&*wake_tx).write(&[1]);
    }
}

fn account_served(shared: &Shared, tenant: Option<&TenantStats>, outcome: &Outcome) {
    let solutions = outcome.solutions.len() as u64;
    {
        let mut m = shared.metrics.lock().expect("metrics");
        m.served += 1;
        m.solutions += solutions;
        m.inferences += outcome.stats.inferences;
        m.cycles += outcome.stats.cycles;
        m.steps += outcome.stats.instructions;
        m.switch_hits += outcome.profile.switches.hits;
        m.switch_misses += outcome.profile.switches.misses;
        m.switch_probes += outcome.profile.switches.probes;
        m.switch_depth2 += outcome.profile.switches.depth2;
    }
    if let Some(t) = tenant {
        t.served.fetch_add(1, Ordering::Relaxed);
        t.solutions.fetch_add(solutions, Ordering::Relaxed);
        t.inferences
            .fetch_add(outcome.stats.inferences, Ordering::Relaxed);
        t.cycles.fetch_add(outcome.stats.cycles, Ordering::Relaxed);
        t.steps
            .fetch_add(outcome.stats.instructions, Ordering::Relaxed);
    }
}

fn tenant_stats_of(shared: &Shared, name: Option<&str>) -> Option<Arc<TenantStats>> {
    let _ = &shared; // keep the signature honest about where stats live
    name.and_then(|n| shared.registry.lookup(n).ok())
        .map(|t| Arc::clone(&t.stats))
}

fn error_reply(e: &KcmError, shared: &Shared, tenant: Option<&TenantStats>) -> Reply {
    let class = error_class(e);
    {
        let mut m = shared.metrics.lock().expect("metrics");
        if class == "budget" {
            m.budget_stops += 1;
        } else {
            m.errors += 1;
        }
    }
    if let Some(t) = tenant {
        if class == "budget" {
            t.budget_stops.fetch_add(1, Ordering::Relaxed);
        } else {
            t.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    Reply::Err {
        class: class.to_owned(),
        message: e.to_string(),
    }
}

/// The full `STATS` body: the aggregate counters, the registry size, and
/// per-tenant counters sorted by name.
fn stats_body(shared: &Shared) -> String {
    let mut body = shared.metrics.lock().expect("metrics").render();
    let tenants = shared.registry.tenants();
    body.push_str(&format!("programs={}\n", tenants.len()));
    for t in tenants {
        let s = t.stats.snapshot();
        let n = &t.name;
        body.push_str(&format!("tenant.{n}.version={}\n", t.version));
        body.push_str(&format!("tenant.{n}.queries={}\n", s.queries));
        body.push_str(&format!("tenant.{n}.served={}\n", s.served));
        body.push_str(&format!("tenant.{n}.busy={}\n", s.busy));
        body.push_str(&format!("tenant.{n}.budget_stops={}\n", s.budget_stops));
        body.push_str(&format!("tenant.{n}.errors={}\n", s.errors));
        body.push_str(&format!("tenant.{n}.solutions={}\n", s.solutions));
        body.push_str(&format!("tenant.{n}.inferences={}\n", s.inferences));
        body.push_str(&format!("tenant.{n}.cycles={}\n", s.cycles));
        body.push_str(&format!("tenant.{n}.steps={}\n", s.steps));
    }
    body
}
