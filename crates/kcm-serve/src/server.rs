//! The query server: a TCP accept loop feeding a bounded job queue that
//! fans out across session-pool worker threads.
//!
//! Concurrency layout:
//!
//! * one **connection thread** per client holds the connection's program
//!   state (its own [`Kcm`]) — CONSULT compiles there;
//! * a fixed set of **worker threads** executes queries as isolated pool
//!   sessions ([`kcm_system::pool::run_session`]) pulled from one bounded
//!   queue; the compiled image travels to the worker as an `Arc`, exactly
//!   as [`kcm_system::SessionPool`] ships it;
//! * the queue is a `sync_channel(queue_depth)`: when it is full the
//!   connection thread answers `BUSY` immediately instead of queueing
//!   without bound — backpressure is explicit and visible to clients.
//!
//! Shutdown is graceful: SHUTDOWN stops the accept loop (a self-connect
//! wakes it), connection threads notice within one read-timeout tick and
//! close after finishing their in-flight request, then the queue sender
//! is dropped so workers drain what was accepted and exit.

use crate::protocol::{read_frame, render_outcome, write_frame, Reply, Request};
use kcm_arch::SymbolTable;
use kcm_compiler::CodeImage;
use kcm_system::pool::run_session;
use kcm_system::{error_class, Kcm, KcmError, MachineConfig, Outcome, QueryJob, QueryOpts, Tier};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How long a connection read blocks before re-checking the shutdown
/// flag; bounds how stale an idle connection can be at drain time.
const READ_TICK: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Step budget applied to requests that don't carry their own
    /// `BUDGET`; `None` leaves runaway queries to the machine's fuel cap.
    pub default_step_budget: Option<u64>,
    /// Execution tier for every served query. Defaults to
    /// [`Tier::Native`]: a service asks "what is the answer", not "how
    /// fast was the 1989 hardware", and the native tier returns identical
    /// solutions, output and error classes several times faster. Set
    /// [`Tier::Cycle`] for fidelity runs where the `STATS` cycle counter
    /// must reflect the simulated machine (it reads 0 under the native
    /// tier).
    pub tier: Tier,
    /// Machine configuration for every session.
    pub machine: MachineConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            queue_depth: 64,
            default_step_budget: Some(50_000_000),
            tier: Tier::Native,
            machine: MachineConfig::default(),
        }
    }
}

/// Server-wide aggregate metrics, reported by `STATS` and returned by
/// [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Programs consulted.
    pub consults: u64,
    /// Queries accepted onto the queue.
    pub queries: u64,
    /// Queries answered with a completed outcome.
    pub served: u64,
    /// Queries rejected with `BUSY` (queue full).
    pub busy: u64,
    /// Queries stopped by the step budget.
    pub budget_stops: u64,
    /// Queries failed with any other error.
    pub errors: u64,
    /// Solutions across served queries.
    pub solutions: u64,
    /// Logical inferences across served queries.
    pub inferences: u64,
    /// Simulated KCM cycles across served queries; stays 0 when serving
    /// on the (default) native tier, which has no clock.
    pub cycles: u64,
}

impl ServeMetrics {
    /// The `STATS` reply body: one `key=value` line per counter.
    pub fn render(&self) -> String {
        format!(
            "connections={}\nconsults={}\nqueries={}\nserved={}\nbusy={}\nbudget_stops={}\nerrors={}\nsolutions={}\ninferences={}\ncycles={}\n",
            self.connections,
            self.consults,
            self.queries,
            self.served,
            self.busy,
            self.budget_stops,
            self.errors,
            self.solutions,
            self.inferences,
            self.cycles
        )
    }
}

/// One queued query: everything a worker needs to run the session, plus
/// the reply channel back to the connection thread.
struct WorkItem {
    image: Arc<CodeImage>,
    symbols: SymbolTable,
    config: MachineConfig,
    job: QueryJob,
    reply: mpsc::Sender<Result<Outcome, KcmError>>,
}

struct Shared {
    cfg: ServeConfig,
    /// `Some` while accepting work; taken (dropping the sender) at drain.
    jobs: Mutex<Option<SyncSender<WorkItem>>>,
    metrics: Mutex<ServeMetrics>,
    shutting_down: AtomicBool,
}

/// A bound, not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and spawns the worker threads. `addr` may name port 0
    /// for an ephemeral port; read it back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let (tx, rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_depth.max(1));
        let workers = (0..cfg.workers.max(1))
            .map({
                let rx = Arc::new(Mutex::new(rx));
                move |_| {
                    let rx = Arc::clone(&rx);
                    std::thread::spawn(move || worker_loop(&rx))
                }
            })
            .collect();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                jobs: Mutex::new(Some(tx)),
                metrics: Mutex::new(ServeMetrics::default()),
                shutting_down: AtomicBool::new(false),
            }),
            workers,
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends SHUTDOWN, then drains and returns the
    /// final metrics.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors; per-connection errors only
    /// end that connection.
    pub fn run(self) -> std::io::Result<ServeMetrics> {
        let addr = self.listener.local_addr()?;
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            self.shared.metrics.lock().expect("metrics").connections += 1;
            let shared = Arc::clone(&self.shared);
            connections.push(std::thread::spawn(move || {
                // Connection errors (resets, protocol violations) are not
                // server errors; dropping the connection is the response.
                let _ = serve_connection(stream, &shared, addr);
            }));
        }
        // Drain: connections finish their in-flight request and observe
        // the flag within one read tick...
        for c in connections {
            let _ = c.join();
        }
        // ...then the queue closes and workers run what was accepted.
        drop(self.shared.jobs.lock().expect("jobs lock").take());
        for w in self.workers {
            let _ = w.join();
        }
        let metrics = self.shared.metrics.lock().expect("metrics").clone();
        Ok(metrics)
    }
}

fn worker_loop(rx: &Mutex<Receiver<WorkItem>>) {
    loop {
        // Hold the lock only to pop; run the session outside it.
        let item = match rx.lock().expect("worker queue").recv() {
            Ok(item) => item,
            Err(_) => return, // queue closed: drained
        };
        let outcome = run_session(&item.image, &item.symbols, &item.config, &item.job);
        // A gone connection is fine — the work was still done.
        let _ = item.reply.send(outcome);
    }
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    server_addr: std::net::SocketAddr,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // This connection's program state.
    let mut kcm = Kcm::with_config(shared.cfg.machine.clone());
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // client hung up
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let reply = match Request::parse(&payload) {
            Ok(request) => {
                let shutdown = request == Request::Shutdown;
                let reply = handle_request(request, &mut kcm, shared);
                write_frame(&mut writer, &reply.encode())?;
                if shutdown {
                    initiate_shutdown(shared, server_addr);
                    return Ok(());
                }
                continue;
            }
            Err(why) => Reply::Err {
                class: "protocol".to_owned(),
                message: why,
            },
        };
        write_frame(&mut writer, &reply.encode())?;
    }
}

fn handle_request(request: Request, kcm: &mut Kcm, shared: &Shared) -> Reply {
    match request {
        Request::Consult { source } => {
            // CONSULT replaces the connection's program (Kcm::consult
            // *adds* clauses; a service client re-sending its program
            // wants idempotence, not accumulation).
            let mut fresh = Kcm::with_config(shared.cfg.machine.clone());
            match fresh.consult(&source) {
                Ok(()) => {
                    *kcm = fresh;
                    shared.metrics.lock().expect("metrics").consults += 1;
                    Reply::Ok {
                        body: String::new(),
                    }
                }
                Err(e) => error_reply(&e, shared),
            }
        }
        Request::Query {
            query,
            enumerate_all,
            step_budget,
        } => handle_query(&query, enumerate_all, step_budget, kcm, shared),
        Request::Stats => Reply::Ok {
            body: shared.metrics.lock().expect("metrics").render(),
        },
        Request::Shutdown => Reply::Ok {
            body: String::new(),
        },
    }
}

fn handle_query(
    query: &str,
    enumerate_all: bool,
    step_budget: Option<u64>,
    kcm: &Kcm,
    shared: &Shared,
) -> Reply {
    let Some(image) = kcm.shared_image() else {
        return error_reply(&KcmError::NoProgram, shared);
    };
    let opts = QueryOpts {
        enumerate_all,
        step_budget: step_budget.or(shared.cfg.default_step_budget),
        trace: 0,
        tier: shared.cfg.tier,
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let item = WorkItem {
        image,
        symbols: kcm.symbols().clone(),
        config: kcm.config().clone(),
        job: QueryJob::with_opts(query, opts),
        reply: reply_tx,
    };
    // try_send is the backpressure point: a full queue is the client's
    // problem (retry), never the server's memory.
    match shared.jobs.lock().expect("jobs lock").as_ref() {
        None => {
            return error_reply(
                &KcmError::Harness("server is shutting down".to_owned()),
                shared,
            )
        }
        Some(tx) => match tx.try_send(item) {
            Ok(()) => shared.metrics.lock().expect("metrics").queries += 1,
            Err(TrySendError::Full(_)) => {
                shared.metrics.lock().expect("metrics").busy += 1;
                return Reply::Busy;
            }
            Err(TrySendError::Disconnected(_)) => {
                return error_reply(
                    &KcmError::Harness("server is shutting down".to_owned()),
                    shared,
                )
            }
        },
    }
    match reply_rx.recv() {
        Ok(Ok(outcome)) => {
            let mut m = shared.metrics.lock().expect("metrics");
            m.served += 1;
            m.solutions += outcome.solutions.len() as u64;
            m.inferences += outcome.stats.inferences;
            m.cycles += outcome.stats.cycles;
            Reply::Ok {
                body: render_outcome(&outcome),
            }
        }
        Ok(Err(e)) => error_reply(&e, shared),
        Err(_) => error_reply(
            &KcmError::Harness("worker dropped the request".to_owned()),
            shared,
        ),
    }
}

fn error_reply(e: &KcmError, shared: &Shared) -> Reply {
    let class = error_class(e);
    {
        let mut m = shared.metrics.lock().expect("metrics");
        if class == "budget" {
            m.budget_stops += 1;
        } else {
            m.errors += 1;
        }
    }
    Reply::Err {
        class: class.to_owned(),
        message: e.to_string(),
    }
}

fn initiate_shutdown(shared: &Shared, server_addr: std::net::SocketAddr) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Wake the blocking accept loop so it observes the flag.
    let _ = TcpStream::connect(server_addr);
}
