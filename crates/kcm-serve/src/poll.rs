//! Minimal readiness polling over raw libc — epoll on Linux, `poll(2)`
//! on other unix platforms. Zero external dependencies: the handful of
//! syscall bindings the loop needs are declared here directly against
//! the C library the Rust standard library already links.
//!
//! The surface is the smallest thing a single-threaded readiness loop
//! needs: register a file descriptor under a `u64` token with a
//! read/write interest, change the interest, deregister, and wait with
//! a timeout. Level-triggered semantics on both back ends — an event
//! repeats until the condition is consumed — because level triggering
//! makes partial reads and writes impossible to lose, which is the
//! whole point of the front end this serves.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Write-only interest (reads intentionally paused: the loop's
    /// per-connection flow control while a request is in flight).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// No interest at all; the descriptor stays registered but silent.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event: which token fired and how.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up: a read will return 0/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition; the owner should read to collect the
    /// error and close.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll bindings. `epoll_event` is packed on x86-64 (and only
    //! there) per the kernel ABI.

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
}

/// The readiness poller: epoll on Linux.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates the epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes a registered descriptor's interest (and/or token).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters a descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Waits up to `timeout` for readiness, appending events to `out`
    /// (cleared first). Returning with no events after the timeout is
    /// not an error — it is the caller's periodic flag-check tick.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure (`EINTR` is retried internally).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        out.clear();
        const CAP: usize = 1024;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let millis = i32::try_from(timeout.as_millis())
            .unwrap_or(i32::MAX)
            .max(1);
        let n = loop {
            let rc = unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, millis) };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (events, data) = (ev.events, ev.data);
            out.push(Event {
                token: data,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                hangup: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Raw `poll(2)` bindings for the portable fallback.

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
}

/// The readiness poller: `poll(2)` on non-Linux unix. Registration is a
/// userspace table re-submitted on every wait — O(n) per call where
/// epoll is O(ready), which is fine for the fallback's purpose.
#[cfg(all(unix, not(target_os = "linux")))]
#[derive(Debug, Default)]
pub struct Poller {
    registered: std::cell::RefCell<Vec<(RawFd, u64, Interest)>>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    /// Creates the poller.
    ///
    /// # Errors
    ///
    /// Infallible on this back end; `io::Result` for signature parity.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller::default())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Infallible on this back end.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.registered.borrow_mut().push((fd, token, interest));
        Ok(())
    }

    /// Changes a registered descriptor's interest (and/or token).
    ///
    /// # Errors
    ///
    /// `NotFound` when the descriptor was never registered.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut reg = self.registered.borrow_mut();
        for slot in reg.iter_mut() {
            if slot.0 == fd {
                *slot = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    /// Deregisters a descriptor.
    ///
    /// # Errors
    ///
    /// `NotFound` when the descriptor was never registered.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut reg = self.registered.borrow_mut();
        let before = reg.len();
        reg.retain(|slot| slot.0 != fd);
        if reg.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    /// Waits up to `timeout` for readiness, appending events to `out`
    /// (cleared first).
    ///
    /// # Errors
    ///
    /// Propagates `poll` failure (`EINTR` is retried internally).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        out.clear();
        let reg = self.registered.borrow();
        let mut fds: Vec<sys::PollFd> = reg
            .iter()
            .map(|&(fd, _, interest)| sys::PollFd {
                fd,
                events: if interest.readable { sys::POLLIN } else { 0 }
                    | if interest.writable { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let millis = i32::try_from(timeout.as_millis())
            .unwrap_or(i32::MAX)
            .max(1);
        loop {
            let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, millis) };
            if rc >= 0 {
                break;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
        for (pfd, &(_, token, _)) in fds.iter().zip(reg.iter()) {
            if pfd.revents == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_fires_on_data_and_respects_interest() {
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.add(b.as_raw_fd(), 7, Interest::READ).expect("add");
        let mut events = Vec::new();

        // Nothing written yet: the wait times out eventless.
        poller
            .wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty());

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1, "level-triggered readiness repeats");

        // Interest NONE silences the descriptor without deregistering.
        poller
            .modify(b.as_raw_fd(), 7, Interest::NONE)
            .expect("modify");
        poller
            .wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "paused interest must not fire on data");

        // Back to READ: the byte is still there.
        poller
            .modify(b.as_raw_fd(), 7, Interest::READ)
            .expect("modify");
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        let mut byte = [0u8; 1];
        (&b).read_exact(&mut byte).expect("read");
        poller.remove(b.as_raw_fd()).expect("remove");
    }

    #[test]
    fn writable_interest_fires_on_an_open_socket() {
        let (a, _b) = UnixStream::pair().expect("pair");
        let poller = Poller::new().expect("poller");
        poller
            .add(a.as_raw_fd(), 1, Interest::READ_WRITE)
            .expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn hangup_reports_as_readable() {
        let (a, b) = UnixStream::pair().expect("pair");
        let poller = Poller::new().expect("poller");
        poller.add(b.as_raw_fd(), 3, Interest::READ).expect("add");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert!(
            events[0].readable,
            "hangup must surface as readable so the owner reads the EOF"
        );
    }
}
