//! Robustness properties of the reader: arbitrary input must never panic
//! (errors are fine), and well-formed terms must round-trip through
//! display and reparse.

use kcm_prolog::{read_program, read_term, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in "[ -~\n\t]{0,120}") {
        let _ = Lexer::tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in "[ -~\n\t]{0,120}") {
        let _ = read_program(&src);
        let _ = read_term(&src);
    }

    #[test]
    fn parser_never_panics_on_prologish_soup(
        src in r"[a-zXY\(\)\[\]\|,\.:\- 0-9']{0,80}"
    ) {
        let _ = read_program(&src);
    }

    #[test]
    fn numbers_roundtrip(n in any::<i32>()) {
        let t = read_term(&n.to_string()).expect("integers parse");
        prop_assert_eq!(t, kcm_prolog::Term::Int(n));
    }

    #[test]
    fn quoted_atoms_roundtrip(name in "[ -~]{1,20}") {
        // Skip names with quote/backslash (escaping covered by unit tests).
        prop_assume!(!name.contains('\'') && !name.contains('\\'));
        let t = read_term(&format!("'{name}'")).expect("quoted atoms parse");
        prop_assert_eq!(t, kcm_prolog::Term::Atom(name));
    }

    #[test]
    fn operator_expressions_reparse_stably(
        a in 0i32..100, b in 0i32..100, c in 0i32..100,
        op1 in proptest::sample::select(vec!["+", "-", "*", "//"]),
        op2 in proptest::sample::select(vec!["+", "-", "*", "//"]),
    ) {
        let src = format!("{a} {op1} {b} {op2} {c}");
        let t1 = read_term(&src).expect("parses");
        let t2 = read_term(&t1.to_string()).expect("reparses");
        prop_assert_eq!(t1, t2);
    }
}
