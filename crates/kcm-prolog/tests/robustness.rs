//! Robustness properties of the reader: arbitrary input must never panic
//! (errors are fine), and well-formed terms must round-trip through
//! display and reparse. (Deterministic `kcm-testkit` generators.)

use kcm_prolog::{read_program, read_term, Lexer};
use kcm_testkit::{cases, charset};

#[test]
fn lexer_never_panics() {
    let cs = ascii_soup();
    cases(256, |rng| {
        let src = rng.string_from(&cs, 0, 121);
        let _ = Lexer::tokenize(&src);
    });
}

#[test]
fn parser_never_panics() {
    let cs = ascii_soup();
    cases(256, |rng| {
        let src = rng.string_from(&cs, 0, 121);
        let _ = read_program(&src);
        let _ = read_term(&src);
    });
}

#[test]
fn parser_never_panics_on_prologish_soup() {
    // Characters likely to form near-miss Prolog: atoms, variables,
    // brackets, bars, commas, clause dots, quotes and digits.
    let mut cs = charset(&[('a', 'z'), ('0', '9')]);
    cs.extend("XY()[]|,.:- '".chars());
    cases(512, |rng| {
        let src = rng.string_from(&cs, 0, 81);
        let _ = read_program(&src);
    });
}

#[test]
fn numbers_roundtrip() {
    cases(256, |rng| {
        let n = rng.next_u32() as i32;
        let t = read_term(&n.to_string()).expect("integers parse");
        assert_eq!(t, kcm_prolog::Term::Int(n));
    });
}

#[test]
fn quoted_atoms_roundtrip() {
    let cs = ascii_printable();
    cases(256, |rng| {
        let name = rng.string_from(&cs, 1, 21);
        // Skip names with quote/backslash (escaping covered by unit tests).
        if name.contains('\'') || name.contains('\\') {
            return;
        }
        let t = read_term(&format!("'{name}'")).expect("quoted atoms parse");
        assert_eq!(t, kcm_prolog::Term::Atom(name));
    });
}

#[test]
fn operator_expressions_reparse_stably() {
    const OPS: [&str; 4] = ["+", "-", "*", "//"];
    cases(256, |rng| {
        let (a, b, c) = (rng.int_in(0, 100), rng.int_in(0, 100), rng.int_in(0, 100));
        let op1 = rng.choose(&OPS);
        let op2 = rng.choose(&OPS);
        let src = format!("{a} {op1} {b} {op2} {c}");
        let t1 = read_term(&src).expect("parses");
        let t2 = read_term(&t1.to_string()).expect("reparses");
        assert_eq!(t1, t2, "{src}");
    });
}

/// Printable ASCII plus newline and tab (the old `[ -~\n\t]` class).
fn ascii_soup() -> Vec<char> {
    let mut cs = charset(&[(' ', '~')]);
    cs.push('\n');
    cs.push('\t');
    cs
}

/// Printable ASCII (the old `[ -~]` class).
fn ascii_printable() -> Vec<char> {
    charset(&[(' ', '~')])
}
