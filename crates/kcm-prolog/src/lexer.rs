//! Prolog tokenizer.
//!
//! Handles the token classes the PLM benchmark suite and ordinary Prolog
//! source need: unquoted/quoted/symbolic atoms, variables, integers,
//! floats, punctuation, `%` line comments and `/* */` block comments.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An atom (unquoted, quoted or symbolic), e.g. `foo`, `'a b'`, `:-`.
    Atom(String),
    /// A variable, e.g. `X`, `_Foo`, `_`.
    Var(String),
    /// An integer literal.
    Int(i32),
    /// A float literal.
    Float(f32),
    /// A double-quoted string, yielding a list of character codes.
    Str(String),
    /// `(` immediately following an atom (functor application).
    FunctorParen,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,`.
    Comma,
    /// `|`.
    Bar,
    /// Clause-terminating full stop.
    Dot,
}

/// A lexical error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lexical error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";

/// The tokenizer: turns source text into a vector of ([`Token`], line)
/// pairs.
///
/// # Examples
///
/// ```
/// use kcm_prolog::{Lexer, Token};
/// let tokens = Lexer::tokenize("foo(X).").unwrap();
/// assert_eq!(tokens[0].0, Token::Atom("foo".into()));
/// assert_eq!(tokens[1].0, Token::FunctorParen);
/// ```
#[derive(Debug)]
pub struct Lexer;

impl Lexer {
    /// Tokenizes `src` completely.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] for unterminated quotes/comments or malformed
    /// numbers.
    pub fn tokenize(src: &str) -> Result<Vec<(Token, u32)>, LexError> {
        let mut tokens = Vec::new();
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut line: u32 = 1;
        let err = |message: &str, line: u32| LexError {
            message: message.to_owned(),
            line,
        };
        while i < chars.len() {
            let c = chars[i];
            match c {
                '\n' => {
                    line += 1;
                    i += 1;
                }
                c if c.is_whitespace() => i += 1,
                '%' => {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    let start_line = line;
                    i += 2;
                    loop {
                        if i + 1 >= chars.len() {
                            return Err(err("unterminated block comment", start_line));
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        if chars[i] == '*' && chars[i + 1] == '/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                }
                '(' => {
                    // Distinguish functor application from grouping: a `(`
                    // immediately after an atom/var/`)`/`]` with no space.
                    let prev_tight = i > 0
                        && (chars[i - 1].is_ascii_alphanumeric()
                            || chars[i - 1] == '_'
                            || chars[i - 1] == '\''
                            || SYMBOLIC.contains(chars[i - 1]));
                    let after_token = matches!(
                        tokens.last(),
                        Some((Token::Atom(_), _)) | Some((Token::Var(_), _))
                    );
                    if prev_tight && after_token {
                        tokens.push((Token::FunctorParen, line));
                    } else {
                        tokens.push((Token::LParen, line));
                    }
                    i += 1;
                }
                ')' => {
                    tokens.push((Token::RParen, line));
                    i += 1;
                }
                '[' => {
                    tokens.push((Token::LBracket, line));
                    i += 1;
                }
                ']' => {
                    tokens.push((Token::RBracket, line));
                    i += 1;
                }
                '{' => {
                    tokens.push((Token::LBrace, line));
                    i += 1;
                }
                '}' => {
                    tokens.push((Token::RBrace, line));
                    i += 1;
                }
                ',' => {
                    tokens.push((Token::Comma, line));
                    i += 1;
                }
                '|' => {
                    tokens.push((Token::Bar, line));
                    i += 1;
                }
                '!' => {
                    tokens.push((Token::Atom("!".into()), line));
                    i += 1;
                }
                ';' => {
                    tokens.push((Token::Atom(";".into()), line));
                    i += 1;
                }
                '\'' => {
                    let start_line = line;
                    i += 1;
                    let mut s = String::new();
                    loop {
                        match chars.get(i) {
                            None => return Err(err("unterminated quoted atom", start_line)),
                            Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                                s.push('\'');
                                i += 2;
                            }
                            Some('\\') => {
                                let (ch, used) = unescape(&chars[i..])
                                    .ok_or_else(|| err("bad escape sequence", line))?;
                                s.push(ch);
                                i += used;
                            }
                            Some('\'') => {
                                i += 1;
                                break;
                            }
                            Some('\n') => {
                                line += 1;
                                s.push('\n');
                                i += 1;
                            }
                            Some(&c) => {
                                s.push(c);
                                i += 1;
                            }
                        }
                    }
                    tokens.push((Token::Atom(s), line));
                }
                '"' => {
                    let start_line = line;
                    i += 1;
                    let mut s = String::new();
                    loop {
                        match chars.get(i) {
                            None => return Err(err("unterminated string", start_line)),
                            Some('"') if chars.get(i + 1) == Some(&'"') => {
                                s.push('"');
                                i += 2;
                            }
                            Some('\\') => {
                                let (ch, used) = unescape(&chars[i..])
                                    .ok_or_else(|| err("bad escape sequence", line))?;
                                s.push(ch);
                                i += used;
                            }
                            Some('"') => {
                                i += 1;
                                break;
                            }
                            Some('\n') => {
                                line += 1;
                                s.push('\n');
                                i += 1;
                            }
                            Some(&c) => {
                                s.push(c);
                                i += 1;
                            }
                        }
                    }
                    tokens.push((Token::Str(s), line));
                }
                '0' if chars.get(i + 1) == Some(&'\'') => {
                    // Character code literal 0'c.
                    let ch = *chars
                        .get(i + 2)
                        .ok_or_else(|| err("truncated 0' literal", line))?;
                    tokens.push((Token::Int(ch as i32), line));
                    i += 3;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Float: digits '.' digits [e[+-]digits] — but a '.'
                    // followed by non-digit is a full stop.
                    let mut is_float = false;
                    if chars.get(i) == Some(&'.')
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if matches!(chars.get(i), Some('e') | Some('E'))
                        && (chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                            || (matches!(chars.get(i + 1), Some('+') | Some('-'))
                                && chars.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
                    {
                        is_float = true;
                        i += 2;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text: String = chars[start..i].iter().collect();
                    if is_float {
                        let v: f32 = text
                            .parse()
                            .map_err(|_| err(&format!("bad float: {text}"), line))?;
                        tokens.push((Token::Float(v), line));
                    } else {
                        let v: i32 = text
                            .parse()
                            .map_err(|_| err(&format!("integer out of range: {text}"), line))?;
                        tokens.push((Token::Int(v), line));
                    }
                }
                c if c.is_ascii_uppercase() || c == '_' => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    tokens.push((Token::Var(chars[start..i].iter().collect()), line));
                }
                c if c.is_ascii_lowercase() => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    tokens.push((Token::Atom(chars[start..i].iter().collect()), line));
                }
                c if SYMBOLIC.contains(c) => {
                    let start = i;
                    while i < chars.len() && SYMBOLIC.contains(chars[i]) {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    // A lone '.' followed by whitespace/EOF is the full
                    // stop; ".(..." is the cons functor.
                    if text == "." {
                        tokens.push((Token::Dot, line));
                    } else {
                        tokens.push((Token::Atom(text), line));
                    }
                }
                other => {
                    return Err(err(&format!("unexpected character {other:?}"), line));
                }
            }
        }
        Ok(tokens)
    }
}

/// Decodes an escape sequence starting at `\\`; returns the character and
/// how many source chars were consumed.
fn unescape(chars: &[char]) -> Option<(char, usize)> {
    match chars.get(1)? {
        'n' => Some(('\n', 2)),
        't' => Some(('\t', 2)),
        'r' => Some(('\r', 2)),
        'a' => Some(('\x07', 2)),
        'b' => Some(('\x08', 2)),
        'f' => Some(('\x0C', 2)),
        'v' => Some(('\x0B', 2)),
        '\\' => Some(('\\', 2)),
        '\'' => Some(('\'', 2)),
        '"' => Some(('"', 2)),
        '`' => Some(('`', 2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn simple_clause() {
        assert_eq!(
            toks("foo(X)."),
            vec![
                Token::Atom("foo".into()),
                Token::FunctorParen,
                Token::Var("X".into()),
                Token::RParen,
                Token::Dot
            ]
        );
    }

    #[test]
    fn grouping_paren_vs_functor_paren() {
        let t = toks("a (b)");
        assert_eq!(t[1], Token::LParen);
        let t = toks("a(b)");
        assert_eq!(t[1], Token::FunctorParen);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.5 1e3 0'a"),
            vec![
                Token::Int(42),
                Token::Atom("-".into()),
                Token::Int(7),
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Int(97),
            ]
        );
    }

    #[test]
    fn dot_versus_decimal_and_symbolic() {
        // "1.5" is a float; "a." ends a clause; ":-" is one atom.
        assert_eq!(toks("1.5."), vec![Token::Float(1.5), Token::Dot]);
        assert_eq!(
            toks("a :- b."),
            vec![
                Token::Atom("a".into()),
                Token::Atom(":-".into()),
                Token::Atom("b".into()),
                Token::Dot
            ]
        );
    }

    #[test]
    fn quoted_atoms_and_escapes() {
        assert_eq!(
            toks("'hello world'"),
            vec![Token::Atom("hello world".into())]
        );
        assert_eq!(toks(r"'a\nb'"), vec![Token::Atom("a\nb".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Atom("it's".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a % hi\n b /* x\ny */ c"),
            vec![
                Token::Atom("a".into()),
                Token::Atom("b".into()),
                Token::Atom("c".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let t = Lexer::tokenize("a.\nb.\n\nc.").unwrap();
        assert_eq!(t[0].1, 1);
        assert_eq!(t[2].1, 2);
        assert_eq!(t[4].1, 4);
    }

    #[test]
    fn errors_reported() {
        assert!(Lexer::tokenize("'unterminated").is_err());
        assert!(Lexer::tokenize("99999999999999").is_err());
        assert!(Lexer::tokenize("/* unterminated").is_err());
    }

    #[test]
    fn list_tokens() {
        assert_eq!(
            toks("[H|T]"),
            vec![
                Token::LBracket,
                Token::Var("H".into()),
                Token::Bar,
                Token::Var("T".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn cut_and_semicolon_are_atoms() {
        assert_eq!(
            toks("! ;"),
            vec![Token::Atom("!".into()), Token::Atom(";".into())]
        );
    }
}
