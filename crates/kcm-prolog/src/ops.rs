//! The standard operator table.
//!
//! Priorities and types follow the de-facto standard (Warren/Edinburgh)
//! table that SEPIA and Quintus shared, which is what the PLM benchmark
//! sources assume.

use std::collections::HashMap;

/// Operator fixity/associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Infix, both args strictly lower priority.
    Xfx,
    /// Infix, right arg may have equal priority (right associative).
    Xfy,
    /// Infix, left arg may have equal priority (left associative).
    Yfx,
    /// Prefix, arg strictly lower.
    Fy,
    /// Prefix, arg may be equal.
    Fx,
    /// Postfix, arg strictly lower.
    Xf,
    /// Postfix, arg may be equal.
    Yf,
}

impl OpType {
    /// Whether this is a prefix operator type.
    pub fn is_prefix(self) -> bool {
        matches!(self, OpType::Fy | OpType::Fx)
    }

    /// Whether this is an infix operator type.
    pub fn is_infix(self) -> bool {
        matches!(self, OpType::Xfx | OpType::Xfy | OpType::Yfx)
    }

    /// Whether this is a postfix operator type.
    pub fn is_postfix(self) -> bool {
        matches!(self, OpType::Xf | OpType::Yf)
    }
}

/// One operator definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDef {
    /// Priority 1..=1200 (higher binds looser).
    pub priority: u16,
    /// The fixity.
    pub op_type: OpType,
}

/// The operator table: maps an atom to its prefix and/or infix/postfix
/// definitions (an atom may be both, like `-`).
///
/// # Examples
///
/// ```
/// use kcm_prolog::{OpTable, OpType};
/// let t = OpTable::standard();
/// let minus_prefix = t.prefix("-").unwrap();
/// assert_eq!(minus_prefix.op_type, OpType::Fy);
/// let minus_infix = t.infix("-").unwrap();
/// assert_eq!(minus_infix.priority, 500);
/// ```
#[derive(Debug, Clone)]
pub struct OpTable {
    prefix: HashMap<String, OpDef>,
    infix: HashMap<String, OpDef>,
    postfix: HashMap<String, OpDef>,
}

impl Default for OpTable {
    fn default() -> OpTable {
        OpTable::standard()
    }
}

impl OpTable {
    /// An empty table.
    pub fn empty() -> OpTable {
        OpTable {
            prefix: HashMap::new(),
            infix: HashMap::new(),
            postfix: HashMap::new(),
        }
    }

    /// The standard Edinburgh table.
    pub fn standard() -> OpTable {
        let mut t = OpTable::empty();
        let defs: &[(&str, u16, OpType)] = &[
            (":-", 1200, OpType::Xfx),
            ("-->", 1200, OpType::Xfx),
            (":-", 1200, OpType::Fx),
            ("?-", 1200, OpType::Fx),
            (";", 1100, OpType::Xfy),
            ("->", 1050, OpType::Xfy),
            (",", 1000, OpType::Xfy),
            ("\\+", 900, OpType::Fy),
            ("not", 900, OpType::Fy),
            ("=", 700, OpType::Xfx),
            ("\\=", 700, OpType::Xfx),
            ("==", 700, OpType::Xfx),
            ("\\==", 700, OpType::Xfx),
            ("@<", 700, OpType::Xfx),
            ("@>", 700, OpType::Xfx),
            ("@=<", 700, OpType::Xfx),
            ("@>=", 700, OpType::Xfx),
            ("=..", 700, OpType::Xfx),
            ("is", 700, OpType::Xfx),
            ("=:=", 700, OpType::Xfx),
            ("=\\=", 700, OpType::Xfx),
            ("<", 700, OpType::Xfx),
            (">", 700, OpType::Xfx),
            ("=<", 700, OpType::Xfx),
            (">=", 700, OpType::Xfx),
            ("+", 500, OpType::Yfx),
            ("-", 500, OpType::Yfx),
            ("/\\", 500, OpType::Yfx),
            ("\\/", 500, OpType::Yfx),
            ("xor", 500, OpType::Yfx),
            ("*", 400, OpType::Yfx),
            ("/", 400, OpType::Yfx),
            ("//", 400, OpType::Yfx),
            ("mod", 400, OpType::Yfx),
            ("rem", 400, OpType::Yfx),
            ("<<", 400, OpType::Yfx),
            (">>", 400, OpType::Yfx),
            ("**", 200, OpType::Xfx),
            ("^", 200, OpType::Xfy),
            ("-", 200, OpType::Fy),
            ("+", 200, OpType::Fy),
            ("\\", 200, OpType::Fy),
        ];
        for &(name, priority, op_type) in defs {
            t.add(name, priority, op_type);
        }
        t
    }

    /// Adds or replaces an operator definition (the `op/3` directive).
    pub fn add(&mut self, name: &str, priority: u16, op_type: OpType) {
        let def = OpDef { priority, op_type };
        let map = if op_type.is_prefix() {
            &mut self.prefix
        } else if op_type.is_infix() {
            &mut self.infix
        } else {
            &mut self.postfix
        };
        map.insert(name.to_owned(), def);
    }

    /// The prefix definition of `name`, if any.
    pub fn prefix(&self, name: &str) -> Option<OpDef> {
        self.prefix.get(name).copied()
    }

    /// The infix definition of `name`, if any.
    pub fn infix(&self, name: &str) -> Option<OpDef> {
        self.infix.get(name).copied()
    }

    /// The postfix definition of `name`, if any.
    pub fn postfix(&self, name: &str) -> Option<OpDef> {
        self.postfix.get(name).copied()
    }

    /// Whether `name` is an operator in any fixity.
    pub fn is_operator(&self, name: &str) -> bool {
        self.prefix.contains_key(name)
            || self.infix.contains_key(name)
            || self.postfix.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_the_essentials() {
        let t = OpTable::standard();
        assert_eq!(t.infix(":-").unwrap().priority, 1200);
        assert_eq!(t.infix(",").unwrap().priority, 1000);
        assert_eq!(t.infix("is").unwrap().priority, 700);
        assert_eq!(t.infix("+").unwrap().op_type, OpType::Yfx);
        assert_eq!(t.infix("^").unwrap().op_type, OpType::Xfy);
        assert!(t.prefix("\\+").is_some());
    }

    #[test]
    fn minus_is_both_prefix_and_infix() {
        let t = OpTable::standard();
        assert!(t.prefix("-").is_some());
        assert!(t.infix("-").is_some());
        assert!(t.postfix("-").is_none());
    }

    #[test]
    fn op_directive_extends_table() {
        let mut t = OpTable::standard();
        assert!(!t.is_operator("===>"));
        t.add("===>", 800, OpType::Xfx);
        assert_eq!(t.infix("===>").unwrap().priority, 800);
    }

    #[test]
    fn non_operator_is_unknown() {
        let t = OpTable::standard();
        assert!(!t.is_operator("append"));
        assert_eq!(t.infix("append"), None);
    }
}
