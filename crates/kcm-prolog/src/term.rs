//! Prolog terms as read by the front end.
//!
//! Lists are represented in the classic way: `'.'(Head, Tail)` structures
//! terminated by the atom `[]`. The KCM machine gives both the cons cell
//! and nil their own type tags; the compiler performs that mapping.

/// A source-level Prolog term.
///
/// # Examples
///
/// ```
/// use kcm_prolog::Term;
/// let t = Term::list(vec![Term::Int(1), Term::Int(2)], None);
/// assert_eq!(t.to_string(), "[1,2]");
/// assert!(t.is_proper_list());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A named variable. The parser renames each occurrence of `_` apart.
    Var(String),
    /// An atom. `[]` is the empty list.
    Atom(String),
    /// A 32-bit integer (the machine's native integer width).
    Int(i32),
    /// A 32-bit float (the machine's IEEE single format).
    Float(f32),
    /// A compound term: functor name and arguments (arity ≥ 1).
    Struct(String, Vec<Term>),
}

/// The list constructor functor name.
pub const CONS: &str = ".";

/// The empty-list atom name.
pub const NIL: &str = "[]";

impl Term {
    /// Builds a (possibly partial) list from items and an optional tail.
    /// Without a tail the list is proper (nil-terminated).
    pub fn list(items: Vec<Term>, tail: Option<Term>) -> Term {
        let mut t = tail.unwrap_or(Term::Atom(NIL.to_owned()));
        for item in items.into_iter().rev() {
            t = Term::Struct(CONS.to_owned(), vec![item, t]);
        }
        t
    }

    /// The empty list.
    pub fn nil() -> Term {
        Term::Atom(NIL.to_owned())
    }

    /// A cons cell.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Struct(CONS.to_owned(), vec![head, tail])
    }

    /// The functor name of an atom or structure.
    pub fn functor_name(&self) -> Option<&str> {
        match self {
            Term::Atom(n) => Some(n),
            Term::Struct(n, _) => Some(n),
            _ => None,
        }
    }

    /// The arity (0 for atoms and non-compound terms).
    pub fn arity(&self) -> usize {
        match self {
            Term::Struct(_, args) => args.len(),
            _ => 0,
        }
    }

    /// Whether the term is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Term::Atom(n) if n == NIL)
    }

    /// Whether the term is a cons cell.
    pub fn is_cons(&self) -> bool {
        matches!(self, Term::Struct(n, args) if n == CONS && args.len() == 2)
    }

    /// Whether the term is a proper (nil-terminated, variable-free-spine)
    /// list.
    pub fn is_proper_list(&self) -> bool {
        let mut t = self;
        loop {
            match t {
                Term::Atom(n) if n == NIL => return true,
                Term::Struct(n, args) if n == CONS && args.len() == 2 => t = &args[1],
                _ => return false,
            }
        }
    }

    /// Collects the elements of a proper list; `None` if not proper.
    pub fn list_elements(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut t = self;
        loop {
            match t {
                Term::Atom(n) if n == NIL => return Some(out),
                Term::Struct(n, args) if n == CONS && args.len() == 2 => {
                    out.push(&args[0]);
                    t = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// All variable names in the term, left-to-right, first occurrence
    /// only.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        fn walk<'a>(t: &'a Term, seen: &mut Vec<&'a str>) {
            match t {
                Term::Var(v) if !seen.contains(&v.as_str()) => {
                    seen.push(v);
                }
                Term::Struct(_, args) => {
                    for a in args {
                        walk(a, seen);
                    }
                }
                _ => {}
            }
        }
        walk(self, &mut seen);
        seen
    }
}

fn atom_needs_quotes(name: &str) -> bool {
    if name.is_empty() {
        return true;
    }
    if name == NIL || name == "!" || name == ";" || name == "{}" || name == CONS {
        return false;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty");
    if first.is_ascii_lowercase() {
        return !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";
    !name.chars().all(|c| SYMBOLIC.contains(c))
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Atom(a) => {
                if atom_needs_quotes(a) {
                    write!(f, "'{}'", a.replace('\'', "\\'"))
                } else {
                    write!(f, "{a}")
                }
            }
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{x:?}"),
            Term::Struct(n, args) if n == CONS && args.len() == 2 => {
                write!(f, "[{}", args[0])?;
                let mut t = &args[1];
                loop {
                    match t {
                        Term::Atom(n) if n == NIL => break,
                        Term::Struct(n, args) if n == CONS && args.len() == 2 => {
                            write!(f, ",{}", args[0])?;
                            t = &args[1];
                        }
                        other => {
                            write!(f, "|{other}")?;
                            break;
                        }
                    }
                }
                write!(f, "]")
            }
            Term::Struct(n, args) => {
                if atom_needs_quotes(n) {
                    write!(f, "'{}'(", n.replace('\'', "\\'"))?;
                } else {
                    write!(f, "{n}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_elements() {
        let l = Term::list(vec![Term::Int(1), Term::Atom("a".into())], None);
        assert!(l.is_proper_list());
        let es = l.list_elements().unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0], &Term::Int(1));
    }

    #[test]
    fn partial_list_is_not_proper() {
        let l = Term::list(vec![Term::Int(1)], Some(Term::Var("T".into())));
        assert!(!l.is_proper_list());
        assert_eq!(l.list_elements(), None);
        assert_eq!(l.to_string(), "[1|T]");
    }

    #[test]
    fn display_round_shapes() {
        assert_eq!(Term::nil().to_string(), "[]");
        assert_eq!(
            Term::Struct("f".into(), vec![Term::Var("X".into()), Term::Int(-3)]).to_string(),
            "f(X,-3)"
        );
        assert_eq!(
            Term::Atom("hello world".into()).to_string(),
            "'hello world'"
        );
        assert_eq!(Term::Atom("=".into()).to_string(), "=");
        assert_eq!(Term::Atom("foo".into()).to_string(), "foo");
    }

    #[test]
    fn variables_are_deduplicated_in_order() {
        let t = Term::Struct(
            "f".into(),
            vec![
                Term::Var("X".into()),
                Term::Struct(
                    "g".into(),
                    vec![Term::Var("Y".into()), Term::Var("X".into())],
                ),
            ],
        );
        assert_eq!(t.variables(), vec!["X", "Y"]);
    }

    #[test]
    fn groundness() {
        assert!(Term::Int(1).is_ground());
        assert!(Term::list(vec![Term::Int(1), Term::Atom("a".into())], None).is_ground());
        assert!(!Term::Var("X".into()).is_ground());
        assert!(!Term::Struct("f".into(), vec![Term::Var("X".into())]).is_ground());
    }

    #[test]
    fn functor_name_and_arity() {
        assert_eq!(Term::Atom("a".into()).functor_name(), Some("a"));
        assert_eq!(Term::Atom("a".into()).arity(), 0);
        assert_eq!(Term::Int(1).functor_name(), None);
        let s = Term::Struct("f".into(), vec![Term::Int(1)]);
        assert_eq!(s.arity(), 1);
    }
}
