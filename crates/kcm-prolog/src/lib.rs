//! The Prolog front end of the KCM reproduction.
//!
//! The real KCM system compiled Prolog with the SEPIA tool chain running on
//! the UNIX host (paper §1, §4). This crate is the reader part of that tool
//! chain: a tokenizer, a standard operator table and an operator-precedence
//! parser producing [`Term`]s, which the compiler crate then translates to
//! KCM code.
//!
//! # Examples
//!
//! ```
//! use kcm_prolog::{read_program, Term};
//!
//! # fn main() -> Result<(), kcm_prolog::ParseError> {
//! let clauses = read_program("append([], L, L). append([H|T], L, [H|R]) :- append(T, L, R).")?;
//! assert_eq!(clauses.len(), 2);
//! assert_eq!(clauses[0].functor_name(), Some("append"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod ops;
pub mod parser;
pub mod term;

pub use lexer::{LexError, Lexer, Token};
pub use ops::{OpTable, OpType};
pub use parser::{ParseError, Parser};
pub use term::Term;

/// Reads a complete Prolog program: a sequence of `.`-terminated clauses.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error, with line
/// information.
pub fn read_program(src: &str) -> Result<Vec<Term>, ParseError> {
    Parser::new(src)?.parse_program()
}

/// Reads a single term (without the terminating full stop).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn read_term(src: &str) -> Result<Term, ParseError> {
    Parser::new(src)?.parse_single_term()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_program_counts_clauses() {
        let p = read_program("a. b :- a. c(1). % comment\n d.").unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn read_term_rejects_trailing_garbage() {
        assert!(read_term("foo(X) bar").is_err());
    }
}
