//! Operator-precedence parser for Prolog terms.

use crate::lexer::{LexError, Lexer, Token};
use crate::ops::{OpTable, OpType};
use crate::term::Term;

/// A syntax error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line (0 when at end of input).
    pub line: u32,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "syntax error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// The Prolog reader.
///
/// # Examples
///
/// ```
/// use kcm_prolog::Parser;
/// let t = Parser::new("X is 1 + 2 * 3").unwrap().parse_single_term().unwrap();
/// assert_eq!(t.to_string(), "is(X,+(1,*(2,3)))");
/// ```
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<(Token, u32)>,
    pos: usize,
    ops: OpTable,
    anon_counter: u32,
}

impl Parser {
    /// Tokenizes `src` and prepares a parser with the standard operator
    /// table.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if tokenization fails.
    pub fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            pos: 0,
            ops: OpTable::standard(),
            anon_counter: 0,
        })
    }

    /// Replaces the operator table (directives may extend it).
    pub fn set_ops(&mut self, ops: OpTable) {
        self.ops = ops;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |(_, l)| *l)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    /// Parses a whole program: `.`-terminated clauses until end of input.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut clauses = Vec::new();
        while self.peek().is_some() {
            let t = self.parse(1200)?;
            self.expect(&Token::Dot, "'.' ending the clause")?;
            clauses.push(t);
        }
        Ok(clauses)
    }

    /// Parses exactly one term, allowing an optional trailing full stop.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or trailing tokens.
    pub fn parse_single_term(&mut self) -> Result<Term, ParseError> {
        let t = self.parse(1200)?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
        }
        if self.peek().is_some() {
            return self.error(format!("unexpected trailing {:?}", self.peek()));
        }
        Ok(t)
    }

    /// Whether the next token can begin a term.
    fn starts_term(&self, tok: &Token) -> bool {
        matches!(
            tok,
            Token::Atom(_)
                | Token::Var(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::LParen
                | Token::FunctorParen
                | Token::LBracket
                | Token::LBrace
        )
    }

    /// Operator-precedence parse with a maximum priority.
    fn parse(&mut self, max_prec: u16) -> Result<Term, ParseError> {
        let (mut left, mut left_prec) = self.parse_primary(max_prec)?;
        loop {
            // Comma acts as an infix operator only above priority 999.
            let (name, def) = match self.peek() {
                Some(Token::Comma) if max_prec >= 1000 => {
                    (",".to_owned(), self.ops.infix(",").expect("',' in table"))
                }
                Some(Token::Bar) if max_prec >= 1100 => {
                    // '|' at term level is an alias for ';'.
                    (";".to_owned(), self.ops.infix(";").expect("';' in table"))
                }
                Some(Token::Atom(a)) => match self.ops.infix(a) {
                    Some(def) => (a.clone(), def),
                    None => break,
                },
                _ => break,
            };
            if def.priority > max_prec {
                break;
            }
            let (left_max, right_max) = match def.op_type {
                OpType::Xfx => (def.priority - 1, def.priority - 1),
                OpType::Xfy => (def.priority - 1, def.priority),
                OpType::Yfx => (def.priority, def.priority - 1),
                _ => break,
            };
            if left_prec > left_max {
                break;
            }
            self.pos += 1;
            let right = self.parse(right_max)?;
            left = Term::Struct(name, vec![left, right]);
            left_prec = def.priority;
        }
        Ok((left, left_prec).0)
    }

    /// Parses a primary: literal, variable, compound, list, paren group or
    /// prefix-operator application. Returns the term and its priority.
    fn parse_primary(&mut self, max_prec: u16) -> Result<(Term, u16), ParseError> {
        let tok = match self.advance() {
            Some(t) => t,
            None => return self.error("unexpected end of input"),
        };
        match tok {
            Token::Int(v) => Ok((Term::Int(v), 0)),
            Token::Float(v) => Ok((Term::Float(v), 0)),
            Token::Var(name) => {
                if name == "_" {
                    self.anon_counter += 1;
                    Ok((Term::Var(format!("_G{}", self.anon_counter)), 0))
                } else {
                    Ok((Term::Var(name), 0))
                }
            }
            Token::Str(s) => {
                // Double-quoted string = list of character codes.
                let items = s.chars().map(|c| Term::Int(c as i32)).collect();
                Ok((Term::list(items, None), 0))
            }
            Token::LParen => {
                let t = self.parse(1200)?;
                self.expect(&Token::RParen, "')'")?;
                Ok((t, 0))
            }
            Token::LBrace => {
                if self.peek() == Some(&Token::RBrace) {
                    self.pos += 1;
                    return Ok((Term::Atom("{}".into()), 0));
                }
                let t = self.parse(1200)?;
                self.expect(&Token::RBrace, "'}'")?;
                Ok((Term::Struct("{}".into(), vec![t]), 0))
            }
            Token::LBracket => {
                if self.peek() == Some(&Token::RBracket) {
                    self.pos += 1;
                    return Ok((Term::nil(), 0));
                }
                let mut items = vec![self.parse(999)?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    items.push(self.parse(999)?);
                }
                let tail = if self.peek() == Some(&Token::Bar) {
                    self.pos += 1;
                    Some(self.parse(999)?)
                } else {
                    None
                };
                self.expect(&Token::RBracket, "']'")?;
                Ok((Term::list(items, tail), 0))
            }
            Token::Atom(name) => {
                // Compound term: atom immediately followed by '('.
                if self.peek() == Some(&Token::FunctorParen) {
                    self.pos += 1;
                    let mut args = vec![self.parse(999)?];
                    while self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                        args.push(self.parse(999)?);
                    }
                    self.expect(&Token::RParen, "')'")?;
                    return Ok((Term::Struct(name, args), 0));
                }
                // Prefix operator application.
                if let Some(def) = self.ops.prefix(&name) {
                    let arg_ok = self
                        .peek()
                        .is_some_and(|t| self.starts_term(t))
                        // An atom that is itself an infix operator cannot
                        // start the argument (e.g. `- =` is not a term) —
                        // unless it is also a prefix op or a plain atom
                        // argument followed by a non-term.
                        && !matches!(self.peek(), Some(Token::Atom(a))
                            if self.ops.infix(a).is_some()
                                && self.ops.prefix(a).is_none()
                                && self.peek2() != Some(&Token::FunctorParen));
                    if def.priority <= max_prec && arg_ok {
                        // Fold negative numeric literals.
                        if name == "-" {
                            if let Some(Token::Int(v)) = self.peek() {
                                let v = *v;
                                self.pos += 1;
                                return Ok((Term::Int(-v), 0));
                            }
                            if let Some(Token::Float(v)) = self.peek() {
                                let v = *v;
                                self.pos += 1;
                                return Ok((Term::Float(-v), 0));
                            }
                        }
                        let arg_max = match def.op_type {
                            OpType::Fy => def.priority,
                            _ => def.priority - 1,
                        };
                        let arg = self.parse(arg_max)?;
                        return Ok((Term::Struct(name, vec![arg]), def.priority));
                    }
                }
                Ok((Term::Atom(name), 0))
            }
            other => self.error(format!("unexpected {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Term {
        Parser::new(src).unwrap().parse_single_term().unwrap()
    }

    #[test]
    fn precedence_of_arithmetic() {
        assert_eq!(parse("1+2*3").to_string(), "+(1,*(2,3))");
        assert_eq!(parse("(1+2)*3").to_string(), "*(+(1,2),3)");
        assert_eq!(parse("1-2-3").to_string(), "-(-(1,2),3)"); // yfx
        assert_eq!(parse("2^3^4").to_string(), "^(2,^(3,4))"); // xfy
    }

    #[test]
    fn clause_structure() {
        let t = parse("a :- b, c");
        assert_eq!(t.to_string(), ":-(a,','(b,c))");
    }

    #[test]
    fn comma_right_associates() {
        let t = parse("a :- b, c, d");
        assert_eq!(t.to_string(), ":-(a,','(b,','(c,d)))");
    }

    #[test]
    fn if_then_else() {
        let t = parse("a :- (b -> c ; d)");
        assert_eq!(t.to_string(), ":-(a,;(->(b,c),d))");
    }

    #[test]
    fn lists_parse() {
        assert_eq!(parse("[]").to_string(), "[]");
        assert_eq!(parse("[1,2|T]").to_string(), "[1,2|T]");
        assert_eq!(parse("[a]").to_string(), "[a]");
        // Comma inside a list element must bind tighter than the list
        // separator: [a,b] has two elements, [(a,b)] has one.
        assert_eq!(parse("[(a,b)]").list_elements().unwrap().len(), 1);
        assert_eq!(parse("[a,b]").list_elements().unwrap().len(), 2);
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse("-5"), Term::Int(-5));
        assert_eq!(parse("3 - -5").to_string(), "-(3,-5)");
        assert_eq!(parse("-(5)").to_string(), "-(5)"); // explicit compound
        assert_eq!(parse("- a").to_string(), "-(a)");
    }

    #[test]
    fn compound_terms() {
        assert_eq!(parse("f(g(X), [1], h)").to_string(), "f(g(X),[1],h)");
    }

    #[test]
    fn anonymous_vars_are_distinct() {
        let t = parse("f(_, _)");
        let vars = t.variables();
        assert_eq!(vars.len(), 2);
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn operator_as_functor() {
        assert_eq!(parse("=(a,b)").to_string(), "=(a,b)");
        assert_eq!(parse("-(a,b)").to_string(), "-(a,b)");
    }

    #[test]
    fn is_expression() {
        assert_eq!(parse("X is N - 1").to_string(), "is(X,-(N,1))");
    }

    #[test]
    fn cut_in_body() {
        assert_eq!(parse("a :- !, b").to_string(), ":-(a,','(!,b))");
    }

    #[test]
    fn strings_become_code_lists() {
        assert_eq!(parse("\"ab\"").to_string(), "[97,98]");
    }

    #[test]
    fn priority_violations_error() {
        // Two infix operators in a row.
        assert!(Parser::new("a = = b").unwrap().parse_single_term().is_err());
        // Unbalanced parens.
        assert!(Parser::new("f(a").unwrap().parse_single_term().is_err());
    }

    #[test]
    fn program_of_clauses() {
        let p = Parser::new("nrev([],[]). nrev([H|T],R) :- nrev(T,RT), append(RT,[H],R).")
            .unwrap()
            .parse_program()
            .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].functor_name(), Some(":-"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(Parser::new("a :- b").unwrap().parse_program().is_err());
    }
}
