//! Facade crate of the KCM reproduction (Benker et al., ISCA 1989).
//!
//! Re-exports every subsystem crate under one roof so the examples and the
//! cross-crate integration tests have a single dependency. For real use,
//! depend on the individual crates — [`kcm_system`] is the main entry point.
//!
//! # Quickstart
//!
//! ```
//! use kcm_repro::kcm_system::Kcm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kcm = Kcm::new();
//! kcm.load("likes(mary, wine). likes(john, X) :- likes(mary, X).")?;
//! let solutions = kcm.solve_all("likes(john, What)")?;
//! assert_eq!(solutions.len(), 1);
//! assert_eq!(solutions[0].binding_text("What").as_deref(), Some("wine"));
//! # Ok(())
//! # }
//! ```

pub use kcm_arch;
pub use kcm_compiler;
pub use kcm_cpu;
pub use kcm_mem;
pub use kcm_native;
pub use kcm_prolog;
pub use kcm_suite;
pub use kcm_system;
pub use plm;
pub use spur;
pub use swam;
pub use wam_baseline;
