//! An interactive top level — the "user-friendly Prolog environment" the
//! KCM/host pairing provides (§1), in miniature.
//!
//! ```text
//! cargo run --example repl
//! ?- consult user clauses with [clause. clause. …], query with goals.
//! ```
//!
//! Commands:
//!
//! * `[ <clauses> ]` — consult clauses, e.g. `[p(1). p(2).]`
//! * `<goal>.` — solve; `;`-style enumeration prints every solution
//! * `statistics.` — machine statistics of the last query (SICStus-style)
//! * `profile.` — execution profile of the last query (instruction
//!   classes, MWAC dispatch, backtracks, trail, deref chains)
//! * `:stats` — toggle per-query machine statistics
//! * `:listing` — disassemble the loaded image
//! * `:halt` — leave

use kcm_repro::kcm_system::{report, Kcm, Outcome, QueryOpts};
use std::io::{BufRead, Write as _};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kcm = Kcm::new();
    kcm.consult_prelude()?;
    let mut show_stats = false;
    let mut last: Option<Outcome> = None;
    println!("KCM reproduction top level (prelude loaded). :halt to quit.");
    let stdin = std::io::stdin();
    loop {
        print!("?- ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ":halt" | "halt." => break,
            ":stats" => {
                show_stats = !show_stats;
                println!("statistics {}", if show_stats { "on" } else { "off" });
                continue;
            }
            "statistics." => {
                match &last {
                    Some(o) => println!("{}", report::summary(&o.stats)),
                    None => println!("no query has run yet."),
                }
                continue;
            }
            "profile." => {
                match &last {
                    Some(o) => println!("{}", report::profile_summary(&o.profile)),
                    None => println!("no query has run yet."),
                }
                continue;
            }
            ":listing" => {
                match kcm.disassemble() {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            _ => {}
        }
        if line.starts_with('[') && line.ends_with(']') {
            let src = &line[1..line.len() - 1];
            match kcm.load(src) {
                Ok(()) => {
                    for w in kcm.warnings() {
                        println!("warning: {w}");
                    }
                    println!("consulted.");
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let goal = line.strip_suffix('.').unwrap_or(line);
        match kcm.query(goal, &QueryOpts::all()) {
            Ok(outcome) => {
                if !outcome.output.is_empty() {
                    print!("{}", outcome.output);
                }
                if outcome.solutions.is_empty() {
                    println!("{}", if outcome.success { "true." } else { "false." });
                } else {
                    for s in &outcome.solutions {
                        let line = s
                            .iter()
                            .map(|(n, t)| format!("{n} = {t}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        println!(
                            "{};",
                            if line.is_empty() {
                                "true".to_owned()
                            } else {
                                line
                            }
                        );
                    }
                    println!("false.");
                }
                if show_stats {
                    println!("{}", report::summary(&outcome.stats));
                }
                last = Some(outcome);
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
