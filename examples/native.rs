//! KCM as a tagged general-purpose machine (§2): hand-written native code
//! through the macro assembler — no Prolog involved.
//!
//! ```text
//! cargo run --example native
//! ```

use kcm_repro::kcm_arch::SymbolTable;
use kcm_repro::kcm_compiler::{parse_kasm, Linker};
use kcm_repro::kcm_cpu::{Machine, MachineConfig};

const PROGRAM: &str = "
% sum of the integers 1..N, in native tagged-RISC code
main:
    load_const  r1, 0          % accumulator
    load_const  r2, 10         % N
    load_const  r3, 1          % step
    load_const  r4, 0          % loop bound
loop:
    alu add     r1, r1, r2     % acc += n
    alu sub     r2, r2, r3     % n -= 1
    cmp         r2, r4
    branch gt   loop
    put_value   r1, r0         % A1 := acc
    escape      write
    escape      nl
    halt        true
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut symbols = SymbolTable::new();
    let items = parse_kasm(PROGRAM, &mut symbols)?;
    let image = Linker::link_items(&items, &mut symbols)?;
    let entry = image.entry("main", 0).expect("main entry");
    let mut machine = Machine::new(image, symbols, MachineConfig::default());
    let outcome = machine.run(entry)?;
    println!("program output : {}", outcome.output.trim());
    println!("machine cycles : {}", outcome.stats.cycles);
    println!("instructions   : {}", outcome.stats.instructions);
    println!(
        "The tag bits ride along: the accumulator stayed a tagged Int word\n\
         through every ALU operation — the 'tagged general purpose machine'\n\
         claim of the paper, in action."
    );
    Ok(())
}
