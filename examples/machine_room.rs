//! A tour of the machine room: compile a benchmark, disassemble its KCM
//! code, run it on KCM and on both baseline machine models, and compare
//! the architecture-level counters — the experiment workflow the paper's
//! evaluation section is made of.
//!
//! ```text
//! cargo run --example machine_room [program]
//! ```
//!
//! `program` is a PLM-suite name (default: `nrev1`).

use kcm_repro::kcm_suite::runner::{run_program, Variant};
use kcm_repro::kcm_suite::{program, programs};
use kcm_repro::kcm_system::{Kcm, KcmEngine, Machine, MachineConfig, QueryOpts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nrev1".to_owned());
    let Some(bench) = program(&name) else {
        eprintln!(
            "unknown program {name}; pick one of: {}",
            programs::suite()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    // --- the compiled artifact -------------------------------------
    let mut kcm = Kcm::new();
    kcm.load(bench.source)?;
    let image = kcm.image().expect("consulted");
    let (static_base, static_words) = image.static_data();
    println!("=== {} ===", bench.name);
    println!(
        "code: {} words; static data: {} words at {static_base}",
        image.len_words(),
        static_words.len()
    );
    println!("\n--- disassembly (first 40 lines) ---");
    for line in kcm.disassemble()?.lines().take(40) {
        println!("{line}");
    }

    // --- run on all three machines ----------------------------------
    let opts = QueryOpts {
        enumerate_all: bench.enumerate,
        ..QueryOpts::default()
    };
    let k = run_program(&KcmEngine::new(), &bench, Variant::Starred)?;
    let p = plm::model().run(bench.source, bench.starred_query, &opts)?;
    let s = swam::model().run(bench.source, bench.starred_query, &opts)?;

    println!("\n--- three machines, one program ---");
    println!(
        "{:<28} {:>12} {:>10} {:>8} {:>8}",
        "machine", "cycles", "ms", "Klips", "CPs"
    );
    for (label, stats) in [
        ("KCM (80 ns, shallow bt)", k.outcome.stats),
        ("PLM model (100 ns, eager)", p.stats),
        ("Quintus-class (68020)", s.stats),
    ] {
        println!(
            "{label:<28} {:>12} {:>10.3} {:>8.0} {:>8}",
            stats.cycles,
            stats.ms(),
            stats.klips(),
            stats.choice_points
        );
    }
    println!(
        "\nKCM avoided {} of the choice points the standard WAM created\n\
         (shallow entries: {}, shallow fails resolved without a choice point: {})",
        p.stats
            .choice_points
            .saturating_sub(k.outcome.stats.choice_points),
        k.outcome.stats.shallow_entries,
        k.outcome.stats.shallow_fails,
    );

    // --- the Prolog-level monitor: where do the cycles go? ----------
    let mut kcm2 = Kcm::with_config(MachineConfig {
        profile: true,
        ..Default::default()
    });
    kcm2.load(bench.source)?;
    let (mut machine, vars): (Machine, Vec<String>) = kcm2.prepare(bench.starred_query)?;
    let outcome = machine.run_query(&vars, bench.enumerate)?;
    println!("\n--- cycle profile (Prolog-level monitor) ---");
    for (pred, cycles) in machine.profile().into_iter().take(8) {
        println!(
            "{pred:<24} {cycles:>10} cycles  ({:.1} %)",
            100.0 * cycles as f64 / outcome.stats.cycles as f64
        );
    }
    Ok(())
}
