//! Quickstart: consult a program, ask queries, read the machine counters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kcm_repro::kcm_system::{report, Kcm, QueryOpts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The KCM system: workstation-side tool chain + back-end machine.
    let mut kcm = Kcm::new();

    // Consult a small family database.
    kcm.load(
        "
        parent(tom, bob).      parent(tom, liz).
        parent(bob, ann).      parent(bob, pat).
        parent(pat, jim).

        grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        ",
    )?;

    // First solution.
    if let Some(answer) = kcm.solve_first("grandparent(tom, Who)")? {
        println!("grandparent(tom, Who)  ->  {answer}");
    }

    // All solutions, by backtracking.
    println!("\nancestor(tom, X) enumerates:");
    for answer in kcm.solve_all("ancestor(tom, X)")? {
        println!("  {answer}");
    }

    // Ground queries just succeed or fail.
    println!("\nancestor(liz, jim)? {}", kcm.holds("ancestor(liz, jim)")?);

    // Every run returns the cycle-accurate counters of the 80 ns machine.
    let outcome = kcm.query("ancestor(X, jim)", &QueryOpts::all())?;
    println!(
        "\nancestor(X, jim): {} solutions in {:.3} ms of simulated KCM time",
        outcome.solutions.len(),
        outcome.stats.ms()
    );
    println!("\n{}", report::summary(&outcome.stats));
    Ok(())
}
