//! Symbolic differentiation — the workload behind the paper's `times10`,
//! `divide10`, `log10` and `ops8` benchmarks. Shows structure-heavy
//! unification, `switch_on_structure` indexing, and reading a structured
//! answer back from machine memory.
//!
//! ```text
//! cargo run --example deriv
//! ```

use kcm_repro::kcm_system::{Kcm, QueryOpts};

const DERIV: &str = "
    d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
    d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
    d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
    d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
    d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
    d(-U, X, -DU) :- !, d(U, X, DU).
    d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
    d(log(U), X, DU / U) :- !, d(U, X, DU).
    d(X, X, 1) :- !.
    d(_, _, 0).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kcm = Kcm::new();
    kcm.load(DERIV)?;

    for expr in [
        "x ^ 3 + 2 * x",
        "exp(x) * log(x)",
        "(x + 1) / (x - 1)",
        "x * x * x",
    ] {
        let query = format!("d({expr}, x, D)");
        let outcome = kcm.query(&query, &QueryOpts::first())?;
        let answer = outcome.solutions.first().expect("derivative exists");
        let (_, d) = &answer[0];
        println!("d/dx {expr:<22} = {d}");
        println!(
            "    [{} inferences, {} cycles, switch_on_structure-indexed]",
            outcome.stats.inferences, outcome.stats.cycles
        );
    }
    Ok(())
}
