//! The zebra puzzle (Einstein's riddle, 5-house version) — a classic
//! constraint-by-backtracking workload. Exercises deep backtracking,
//! first-argument indexing, and the trail.
//!
//! ```text
//! cargo run --example zebra
//! ```

use kcm_repro::kcm_system::{report, Kcm, QueryOpts};

const PUZZLE: &str = "
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).

    next_to(X, Y, L) :- right_of(X, Y, L).
    next_to(X, Y, L) :- right_of(Y, X, L).

    right_of(R, L, [L, R|_]).
    right_of(R, L, [_|T]) :- right_of(R, L, T).

    first(X, [X|_]).
    middle(X, [_, _, X, _, _]).

    % house(Nationality, Color, Pet, Drink, Smoke)
    zebra(Owner, Houses) :-
        Houses = [_, _, _, _, _],
        member(house(english, red, _, _, _), Houses),
        member(house(spanish, _, dog, _, _), Houses),
        member(house(_, green, _, coffee, _), Houses),
        member(house(ukrainian, _, _, tea, _), Houses),
        right_of(house(_, green, _, _, _), house(_, ivory, _, _, _), Houses),
        member(house(_, _, snails, _, old_gold), Houses),
        member(house(_, yellow, _, _, kools), Houses),
        middle(house(_, _, _, milk, _), Houses),
        first(house(norwegian, _, _, _, _), Houses),
        next_to(house(_, _, _, _, chesterfield), house(_, _, fox, _, _), Houses),
        next_to(house(_, _, _, _, kools), house(_, _, horse, _, _), Houses),
        member(house(_, _, _, orange_juice, lucky_strike), Houses),
        member(house(japanese, _, _, _, parliament), Houses),
        next_to(house(norwegian, _, _, _, _), house(_, blue, _, _, _), Houses),
        member(house(Owner, _, zebra, _, _), Houses),
        member(house(_, _, _, water, _), Houses).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kcm = Kcm::new();
    kcm.load(PUZZLE)?;

    let outcome = kcm.query("zebra(Owner, Houses)", &QueryOpts::first())?;
    let answer = outcome
        .solutions
        .first()
        .expect("the puzzle has a solution");
    for (name, term) in answer {
        println!("{name} = {term}");
    }
    println!();
    println!(
        "solved in {:.3} ms of simulated KCM time ({} inferences, {} deep fails)",
        outcome.stats.ms(),
        outcome.stats.inferences,
        outcome.stats.deep_fails
    );
    println!("\n{}", report::summary(&outcome.stats));
    Ok(())
}
