//! Parallel multi-session execution: N independent queries against one
//! consulted program on a `SessionPool`, with per-session and merged
//! statistics.
//!
//! ```text
//! cargo run --example sessions
//! KCM_WORKERS=1 cargo run --example sessions   # same bytes, one thread
//! ```

use kcm_system::{Kcm, QueryJob, SessionPool};

fn main() -> Result<(), kcm_system::KcmError> {
    let mut kcm = Kcm::new();
    kcm.load(
        "app([], L, L).
         app([H|T], L, [H|R]) :- app(T, L, R).
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
    )?;

    let pool = SessionPool::from_env();
    println!("pool: {} worker(s)", pool.workers());

    // Eight sessions: split [1,2,3] every way, then a few nrevs.
    let mut jobs: Vec<QueryJob> = vec![QueryJob::all_solutions("app(X, Y, [1,2,3])")];
    for n in [4usize, 8, 16] {
        let list: Vec<String> = (1..=n).map(|i| i.to_string()).collect();
        jobs.push(QueryJob::first_solution(format!(
            "nrev([{}], R)",
            list.join(",")
        )));
    }

    let (results, merged) = pool.run_queries_merged(&kcm, &jobs)?;
    for r in &results {
        let o = r.outcome.as_ref().expect("session ok");
        println!(
            "session {}: {:<22} {} solution(s), {} inferences, {} cycles",
            r.session,
            r.query,
            o.solutions.len(),
            o.stats.inferences,
            o.stats.cycles
        );
        for s in &o.solutions {
            let bindings: Vec<String> = s.iter().map(|(v, t)| format!("{v} = {t}")).collect();
            println!("    {}", bindings.join(", "));
        }
    }
    println!(
        "merged: {} inferences in {} machine cycles across {} sessions",
        merged.inferences,
        merged.cycles,
        results.len()
    );
    Ok(())
}
